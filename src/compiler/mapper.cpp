#include "compiler/mapper.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <tuple>

#include "arch/geometry.hpp"
#include "base/logging.hpp"
#include "base/profile.hpp"
#include "base/rng.hpp"
#include "compiler/precheck.hpp"
#include "compiler/router.hpp"
#include "compiler/vleaf.hpp"

namespace plast::compiler
{

using namespace pir;

namespace
{

/** Per-unit port-allocation cursors. */
struct PortAlloc
{
    uint32_t si = 0, vi = 0, ci = 0;
    uint32_t so = 0, vo = 0, co = 0;
};

/** Which ControlCfg inside a unit a token attaches to. */
enum class CtrlSel : uint8_t { kMain, kPmuWrite, kPmuWrite2, kPmuRead };

struct CtrlHandle
{
    UnitRef unit;
    CtrlSel sel = CtrlSel::kMain;
};

/** A pending scalar-input connection. */
struct ScalarReq
{
    UnitRef unit;
    uint8_t port;
    // Source: an outer counter export, or a leaf sink's scalar stream.
    bool isCtr = false;
    CtrId ctr = kNone;
    NodeId sinkNode = kNone;
    int32_t sinkIdx = kNone;
    /** The node whose runs consume this scalar (pop cadence). */
    NodeId consumer = kNone;
};

struct Cluster
{
    std::vector<CtrlHandle> triggers;
    std::vector<CtrlHandle> dones;
};

/** One capacity-spill request: shrink a memory's N-buffer depth (and
 *  the metapipe depths that drive it) so the buffers fit on-chip. */
struct SpillReq
{
    uint32_t fromBufs = 0;
    uint32_t toBufs = 0;
    std::set<NodeId> nodes; ///< metapipe controllers to throttle
};

class Mapper
{
  public:
    Mapper(const Program &prog, const ArchParams &params,
           const UnitMask &mask, const CompileOptions &opts = {},
           const std::map<NodeId, uint32_t> &depthCaps = {})
        : prog_(prog), P_(params), geom_(params), mask_(mask),
          opts_(opts), depthCaps_(depthCaps)
    {
    }

    MapResult run();

    /** Spill requests recorded by a failed run (empty when the design
     *  is unspillable — the failure is then final). */
    const std::map<MemId, SpillReq> &spillRequests() const
    {
        return spillReqs_;
    }

  private:
    // ---- analysis ----------------------------------------------------
    void analyze();
    std::vector<NodeId> ancestors(NodeId n) const;
    NodeId lca(NodeId a, NodeId b) const;
    int64_t ctrTrips(CtrId c) const;
    int64_t runsPerIter(NodeId leaf, NodeId ancestor) const;
    void memsTouched(NodeId n, std::set<MemId> &reads,
                     std::set<MemId> &writes) const;

    // ---- construction -------------------------------------------------
    void createPcus();
    void createPmus();
    void createAgs();
    void createBoxes();
    void wireScalars();
    void wireControl();
    bool placeAndRoute(FabricConfig &fab);

    // helpers
    ControlCfg &ctrlOf(const CtrlHandle &h);
    PortAlloc &portsOf(const UnitRef &u);
    void connect(NetKind kind, UnitRef src, uint32_t sp, UnitRef dst,
                 uint32_t dp, uint32_t capacity = 16,
                 uint32_t initialTokens = 0);
    uint32_t allocCtlIn(const UnitRef &u);
    uint32_t allocCtlOut(const UnitRef &u);
    void tokenEdge(const CtrlHandle &from, const CtrlHandle &to);
    /** Scalar port on `unit` fed by outer counter `c`. */
    uint32_t scalarForCtr(const UnitRef &unit, CtrId c);
    /** Scalar port on `unit` fed by a sink's scalar value. */
    uint32_t scalarForSink(const UnitRef &unit, NodeId node, int32_t sink);
    /** Build a chain cfg + dynamic-bound hookup for an arbitrary unit. */
    ChainCfg buildChain(const std::vector<CtrId> &ctrs, const UnitRef &unit,
                        bool devectorize = false);
    /** Stages for an addr expr on a PMU/AG datapath. */
    std::vector<StageCfg> addrStages(ExprId expr,
                                     const std::vector<CtrId> &chainCtrs,
                                     const UnitRef &unit, uint8_t &reg);

    void fail(const std::string &msg)
    {
        if (ok_) {
            ok_ = false;
            error_ = msg;
        }
    }

    /** fail() plus the binding-resource tag for the diagnostics. */
    void failBinding(const std::string &resource, const std::string &msg)
    {
        if (ok_ && diag_.binding.empty())
            diag_.binding = resource;
        fail(msg);
    }

    /** Metapipe concurrency of an outer node, after any spill caps. */
    uint32_t metapipeDepth(NodeId o) const
    {
        const Node &n = prog_.nodes[o];
        uint32_t d = n.depthHint
                         ? n.depthHint
                         : static_cast<uint32_t>(n.children.size());
        auto it = depthCaps_.find(o);
        if (it != depthCaps_.end())
            d = std::min(d, it->second);
        return std::max(d, 1u);
    }

    // ---- inputs --------------------------------------------------------
    const Program &prog_;
    ArchParams P_;
    Geometry geom_;
    UnitMask mask_; ///< faulted physical sites placement must avoid
    CompileOptions opts_;
    /** Spill state from earlier rounds: metapipe node -> depth cap. */
    std::map<NodeId, uint32_t> depthCaps_;

    bool ok_ = true;
    std::string error_;
    CompileDiagnostics diag_;
    std::map<MemId, SpillReq> spillReqs_;
    /** Metapipe nodes whose depth drives each memory's N-buffering. */
    std::map<MemId, std::set<NodeId>> nbufContrib_;

    // ---- analysis results -----------------------------------------------
    std::vector<NodeId> leaves_, xfers_, outers_;
    std::map<NodeId, VirtualLeaf> vleaves_;
    std::map<NodeId, PartitionResult> parts_;

    struct ReaderDesc
    {
        enum class Kind { kLeafLoad, kXferStore, kGatherAddr } kind;
        NodeId node;
        int32_t vecSource = -1; ///< kLeafLoad: index into vleaf sources
    };
    struct WriterDesc
    {
        enum class Kind { kLeafSink, kXferLoad, kGatherDst } kind;
        NodeId node;
        int32_t sinkIdx = -1;
    };
    std::map<MemId, std::vector<ReaderDesc>> readers_;
    std::map<MemId, std::vector<WriterDesc>> writers_;
    std::map<MemId, uint32_t> nbuf_;
    std::map<MemId, NodeId> rotNode_;

    // ---- logical units ---------------------------------------------------
    std::vector<PcuCfg> pcus_;
    std::vector<PmuCfg> pmus_;
    std::vector<AgCfg> ags_;
    std::vector<ControlBoxCfg> boxes_;
    std::vector<PortAlloc> pcuPorts_, pmuPorts_, agPorts_, boxPorts_;
    std::vector<ChannelCfg> chans_;
    std::vector<ConstScalar> consts_;
    uint32_t hostArgOuts_ = 0;
    int rootBox_ = -1;

    std::map<NodeId, int> boxOf_;
    std::map<NodeId, std::vector<int>> leafPcus_; ///< chunk -> pcu idx

    /** Vector-source consumer ports: (leaf, vecSourceIdx) ->
     *  [(pcu, vecIn port)] across chunks. */
    std::map<std::pair<NodeId, int>, std::vector<std::pair<int, int>>>
        vecSrcPorts_;
    /** Emission sources: (leaf, emission idx) -> (pcu, port). */
    struct EmitSrc
    {
        int pcu = -1;
        int port = -1;
    };
    std::map<std::pair<NodeId, int>, EmitSrc> emitVec_, emitScal_;
    /** Scalar sink registry: (node, sinkIdx) -> (pcu, scal out port). */
    std::map<std::pair<NodeId, int32_t>, EmitSrc> sinkScalar_;

    std::vector<ScalarReq> scalarReqs_;
    /** Node whose unit configs are currently being generated; recorded
     *  into scalar requests to compute export pop cadences. */
    NodeId curConsumer_ = kNone;
    /** Box export ports: (ctr) -> (box, port). */
    std::map<CtrId, std::pair<int, int>> exports_;
    std::map<CtrId, NodeId> ctrOwner_;

    std::map<NodeId, Cluster> clusters_;

    // Precise dependence-token sources (§3.5): the done pulses that
    // carry a RAW/WAR edge come from the ports that actually produce /
    // consume the shared data, keeping token fan-out linear.
    std::map<std::tuple<MemId, NodeId, NodeId>, std::vector<CtrlHandle>>
        writeHandles_; ///< (mem, writer node, instance owner)
    std::map<std::pair<MemId, NodeId>, std::vector<CtrlHandle>>
        allWriteHandles_; ///< (mem, writer node): every instance
    std::map<std::pair<MemId, NodeId>, std::vector<CtrlHandle>>
        readHandles_; ///< (mem, reader node)
    std::map<NodeId, std::vector<CtrlHandle>> storeAgs_;
    std::map<NodeId, CtrlHandle> lastPcu_;

    /** PMU instance per (mem, reader node, reader vec source). */
    std::map<std::tuple<MemId, NodeId, int32_t>, int> pmuOfReader_;
    /** Transfer-load / gather-dst data inputs: xfer -> (pmu, port). */
    std::map<NodeId, std::vector<std::pair<int, int>>> xferWritePorts_;
    /** Transfer-store / gather-addr source PMU per transfer. */
    std::map<NodeId, int> xferReadPmu_;

    MappingReport rep_;
    std::vector<Addr> dramBase_;
};

// =====================================================================
// Analysis
// =====================================================================

std::vector<NodeId>
Mapper::ancestors(NodeId n) const
{
    std::vector<NodeId> up;
    for (NodeId a = n; a != kNone; a = prog_.nodes[a].parent)
        up.push_back(a);
    return up;
}

NodeId
Mapper::lca(NodeId a, NodeId b) const
{
    std::vector<NodeId> ua = ancestors(a);
    std::set<NodeId> sa(ua.begin(), ua.end());
    for (NodeId x = b; x != kNone; x = prog_.nodes[x].parent) {
        if (sa.count(x))
            return x;
    }
    return prog_.root;
}

int64_t
Mapper::ctrTrips(CtrId c) const
{
    const CtrDecl &cd = prog_.ctrs[c];
    int64_t bound;
    if (cd.boundArg != kNone)
        bound = wordToInt(prog_.args[cd.boundArg].value);
    else if (cd.boundSinkNode != kNone)
        return -1; // dynamic
    else
        bound = cd.max;
    int64_t span = bound - cd.min;
    if (span <= 0)
        return 0;
    return (span + cd.step - 1) / cd.step;
}

int64_t
Mapper::runsPerIter(NodeId leaf, NodeId ancestor) const
{
    int64_t runs = 1;
    NodeId n = prog_.nodes[leaf].parent;
    for (; n != kNone && n != ancestor; n = prog_.nodes[n].parent) {
        const Node &node = prog_.nodes[n];
        for (CtrId c : node.ctrs) {
            int64_t t = ctrTrips(c);
            if (t < 0)
                return -1; // dynamic trip count
            runs *= std::max<int64_t>(t, 1);
        }
    }
    if (n != ancestor)
        return -1; // not an ancestor
    return runs;
}

void
Mapper::memsTouched(NodeId id, std::set<MemId> &reads,
                    std::set<MemId> &writes) const
{
    const Node &n = prog_.nodes[id];
    switch (n.kind) {
      case NodeKind::kOuter:
        for (NodeId c : n.children)
            memsTouched(c, reads, writes);
        return;
      case NodeKind::kTransfer:
        if (n.xfer.sparse) {
            reads.insert(n.xfer.dram);
            reads.insert(n.xfer.addrMem);
            writes.insert(n.xfer.sram);
        } else if (n.xfer.load) {
            reads.insert(n.xfer.dram);
            writes.insert(n.xfer.sram);
        } else {
            reads.insert(n.xfer.sram);
            writes.insert(n.xfer.dram);
        }
        return;
      case NodeKind::kCompute: {
        // Loads via expressions; DRAM streams count as reads.
        std::function<void(ExprId)> scan = [&](ExprId e) {
            if (e == kNone)
                return;
            const Expr &ex = prog_.exprs[e];
            if (ex.kind == ExprKind::kLoadSram) {
                reads.insert(ex.mem);
                scan(ex.addr);
            } else if (ex.kind == ExprKind::kStreamIn) {
                reads.insert(n.streamIns[ex.stream].dram);
                scan(n.streamIns[ex.stream].addr);
            } else if (ex.kind == ExprKind::kAlu) {
                scan(ex.a);
                scan(ex.b);
                scan(ex.c);
            }
        };
        for (const Sink &s : n.sinks) {
            scan(s.value);
            scan(s.pred);
            scan(s.scatterPred);
            if (s.kind == SinkKind::kStoreSram ||
                (s.kind == SinkKind::kFold &&
                 s.dest == FoldDest::kSramAddr))
                writes.insert(s.mem);
            if (s.kind == SinkKind::kFlatMapSram)
                writes.insert(s.mem);
            if (s.kind == SinkKind::kStreamOut ||
                s.kind == SinkKind::kScatterOut) {
                writes.insert(s.dram);
                scan(s.dramAddr);
            }
            // Address expressions may read memories (gather keys).
            scan(s.addr);
        }
        return;
      }
    }
}

void
Mapper::analyze()
{
    // DRAM base offsets (64 B aligned).
    dramBase_.assign(prog_.mems.size(), 0);
    Addr cursor = 0;
    for (size_t m = 0; m < prog_.mems.size(); ++m) {
        if (prog_.mems[m].kind != MemKind::kDram)
            continue;
        dramBase_[m] = cursor;
        cursor += ((prog_.mems[m].sizeWords * 4 + kBurstBytes - 1) /
                   kBurstBytes) *
                  kBurstBytes;
        // Guard band: stream AGs may over-read the final burst.
        cursor += kBurstBytes;
    }

    // Node lists + counter owners.
    std::function<void(NodeId)> walk = [&](NodeId id) {
        const Node &n = prog_.nodes[id];
        switch (n.kind) {
          case NodeKind::kOuter:
            outers_.push_back(id);
            for (CtrId c : n.ctrs)
                ctrOwner_[c] = id;
            for (NodeId c : n.children)
                walk(c);
            return;
          case NodeKind::kCompute:
            leaves_.push_back(id);
            return;
          case NodeKind::kTransfer:
            xfers_.push_back(id);
            return;
        }
    };
    walk(prog_.root);

    // Lower + partition every compute leaf.
    for (NodeId l : leaves_) {
        VirtualLeaf vl = lowerLeaf(prog_, l, P_.pcu.lanes);
        if (!vl.error.empty()) {
            failBinding("pcu.pipeline", vl.error);
            return;
        }
        PartitionResult pr = partitionLeaf(vl, P_.pcu);
        if (!pr.ok) {
            failBinding("pcu.pipeline",
                        strfmt("leaf '%s': %s", vl.name.c_str(),
                               pr.error.c_str()));
            return;
        }
        vleaves_.emplace(l, std::move(vl));
        parts_.emplace(l, std::move(pr));
    }

    // Memory readers and writers.
    for (NodeId l : leaves_) {
        const VirtualLeaf &vl = vleaves_[l];
        for (size_t v = 0; v < vl.vecSources.size(); ++v) {
            const VecSource &src = vl.vecSources[v];
            if (src.kind == VecSource::Kind::kDramStream)
                continue;
            MemId m = prog_.exprs[src.expr].mem;
            readers_[m].push_back({ReaderDesc::Kind::kLeafLoad, l,
                                   static_cast<int32_t>(v)});
        }
        const Node &n = prog_.nodes[l];
        for (size_t s = 0; s < n.sinks.size(); ++s) {
            const Sink &sk = n.sinks[s];
            bool sram_write =
                sk.kind == SinkKind::kStoreSram ||
                sk.kind == SinkKind::kFlatMapSram ||
                (sk.kind == SinkKind::kFold &&
                 sk.dest == FoldDest::kSramAddr);
            if (sram_write) {
                writers_[sk.mem].push_back({WriterDesc::Kind::kLeafSink,
                                            l, static_cast<int32_t>(s)});
            }
        }
    }
    for (NodeId t : xfers_) {
        const TransferDesc &x = prog_.nodes[t].xfer;
        if (x.sparse) {
            readers_[x.addrMem].push_back(
                {ReaderDesc::Kind::kGatherAddr, t, -1});
            writers_[x.sram].push_back(
                {WriterDesc::Kind::kGatherDst, t, -1});
        } else if (x.load) {
            writers_[x.sram].push_back(
                {WriterDesc::Kind::kXferLoad, t, -1});
        } else {
            readers_[x.sram].push_back(
                {ReaderDesc::Kind::kXferStore, t, -1});
        }
    }

    // N-buffering and rotation level per SRAM memory.
    for (size_t m = 0; m < prog_.mems.size(); ++m) {
        if (prog_.mems[m].kind != MemKind::kSram)
            continue;
        MemId mid = static_cast<MemId>(m);
        uint32_t nbuf = prog_.mems[m].nbufMin;
        NodeId rot = kNone;
        for (const WriterDesc &w : writers_[mid]) {
            for (const ReaderDesc &r : readers_[mid]) {
                NodeId l = lca(w.node, r.node);
                if (rot == kNone ||
                    ancestors(rot).size() > ancestors(l).size())
                    rot = l;
                const Node &ln = prog_.nodes[l];
                if (ln.kind == NodeKind::kOuter &&
                    ln.scheme == CtrlScheme::kMetapipe) {
                    nbuf = std::max(nbuf, metapipeDepth(l));
                    nbufContrib_[mid].insert(l);
                }
            }
        }
        if (rot == kNone)
            rot = prog_.root;
        nbuf_[mid] = std::max<uint32_t>(nbuf, 1);
        rotNode_[mid] = rot;
    }
}

// =====================================================================
// Shared helpers
// =====================================================================

ControlCfg &
Mapper::ctrlOf(const CtrlHandle &h)
{
    switch (h.unit.cls) {
      case UnitClass::kPcu:
        return pcus_[h.unit.index].ctrl;
      case UnitClass::kAg:
        return ags_[h.unit.index].ctrl;
      case UnitClass::kBox:
        return boxes_[h.unit.index].ctrl;
      case UnitClass::kPmu:
        switch (h.sel) {
          case CtrlSel::kPmuWrite:
            return pmus_[h.unit.index].write.ctrl;
          case CtrlSel::kPmuWrite2:
            return pmus_[h.unit.index].write2.ctrl;
          case CtrlSel::kPmuRead:
            return pmus_[h.unit.index].read.ctrl;
          default:
            break;
        }
        panic("bad PMU ctrl selector");
      default:
        panic("ctrlOf: bad unit class");
    }
}

PortAlloc &
Mapper::portsOf(const UnitRef &u)
{
    switch (u.cls) {
      case UnitClass::kPcu:
        return pcuPorts_[u.index];
      case UnitClass::kPmu:
        return pmuPorts_[u.index];
      case UnitClass::kAg:
        return agPorts_[u.index];
      case UnitClass::kBox:
        return boxPorts_[u.index];
      default:
        panic("portsOf: bad unit class");
    }
}

void
Mapper::connect(NetKind kind, UnitRef src, uint32_t sp, UnitRef dst,
                uint32_t dp, uint32_t capacity, uint32_t initialTokens)
{
    ChannelCfg ch;
    ch.kind = kind;
    ch.src = {src, static_cast<uint8_t>(sp)};
    ch.dst = {dst, static_cast<uint8_t>(dp)};
    ch.capacity = capacity;
    ch.initialTokens = initialTokens;
    ch.latency = 2; // refined by routing
    chans_.push_back(ch);
}

uint32_t
Mapper::allocCtlIn(const UnitRef &u)
{
    return portsOf(u).ci++;
}

uint32_t
Mapper::allocCtlOut(const UnitRef &u)
{
    return portsOf(u).co++;
}

void
Mapper::tokenEdge(const CtrlHandle &from, const CtrlHandle &to)
{
    uint32_t op = allocCtlOut(from.unit);
    uint32_t ip = allocCtlIn(to.unit);
    ctrlOf(from).doneOuts.push_back(static_cast<uint8_t>(op));
    ctrlOf(to).tokenIns.push_back(static_cast<uint8_t>(ip));
    connect(NetKind::kControl, from.unit, op, to.unit, ip, 32);
}

uint32_t
Mapper::scalarForCtr(const UnitRef &unit, CtrId c)
{
    uint32_t port = portsOf(unit).si++;
    ScalarReq req;
    req.unit = unit;
    req.port = static_cast<uint8_t>(port);
    req.isCtr = true;
    req.ctr = c;
    req.consumer = curConsumer_;
    scalarReqs_.push_back(req);
    return port;
}

uint32_t
Mapper::scalarForSink(const UnitRef &unit, NodeId node, int32_t sink)
{
    uint32_t port = portsOf(unit).si++;
    ScalarReq req;
    req.unit = unit;
    req.port = static_cast<uint8_t>(port);
    req.isCtr = false;
    req.sinkNode = node;
    req.sinkIdx = sink;
    req.consumer = curConsumer_;
    scalarReqs_.push_back(req);
    return port;
}

ChainCfg
Mapper::buildChain(const std::vector<CtrId> &ctrs, const UnitRef &unit,
                   bool devectorize)
{
    ChainCfg cfg;
    for (CtrId cid : ctrs) {
        const CtrDecl &cd = prog_.ctrs[cid];
        CounterCfg cc;
        cc.min = cd.min;
        cc.step = cd.step;
        cc.vectorized = cd.vectorized && !devectorize;
        if (cd.vectorized && devectorize)
            cc.step = cd.step * P_.pcu.lanes;
        if (cd.boundArg != kNone) {
            cc.max = wordToInt(prog_.args[cd.boundArg].value);
        } else if (cd.boundSinkNode != kNone) {
            cc.maxFromScalarIn = static_cast<int8_t>(scalarForSink(
                unit, cd.boundSinkNode, cd.boundSinkIdx));
            cc.boundScale = cd.boundScale;
        } else {
            cc.max = cd.max;
        }
        cfg.ctrs.push_back(cc);
    }
    return cfg;
}

std::vector<StageCfg>
Mapper::addrStages(ExprId expr, const std::vector<CtrId> &chainCtrs,
                   const UnitRef &unit, uint8_t &reg)
{
    std::map<CtrId, int> ctr_level;
    for (size_t i = 0; i < chainCtrs.size(); ++i)
        ctr_level[chainCtrs[i]] = static_cast<int>(i);
    // Outer counters become scalar inputs. Collect them first.
    std::map<CtrId, int> scalar_port;
    std::function<void(ExprId)> collect = [&](ExprId id) {
        if (id == kNone)
            return;
        const Expr &e = prog_.exprs[id];
        if (e.kind == ExprKind::kCtr && !ctr_level.count(e.ctr) &&
            !scalar_port.count(e.ctr)) {
            scalar_port[e.ctr] =
                static_cast<int>(scalarForCtr(unit, e.ctr));
        } else if (e.kind == ExprKind::kAlu) {
            collect(e.a);
            collect(e.b);
            collect(e.c);
        }
    };
    collect(expr);
    std::string err;
    std::vector<StageCfg> stages =
        lowerScalarExpr(prog_, expr, ctr_level, scalar_port, reg, &err);
    if (!err.empty())
        failBinding("pcu.pipeline", err);
    return stages;
}

// =====================================================================
// PCU construction
// =====================================================================

void
Mapper::createPcus()
{
    for (NodeId l : leaves_) {
        curConsumer_ = l;
        const VirtualLeaf &vl = vleaves_[l];
        const PartitionResult &part = parts_[l];
        std::vector<int32_t> last_use(vl.values.size(), -1);
        for (size_t i = 0; i < vl.ops.size(); ++i) {
            for (int32_t v :
                 {vl.ops[i].a, vl.ops[i].b, vl.ops[i].c}) {
                if (v >= 0)
                    last_use[v] = static_cast<int32_t>(i);
            }
        }

        // Emission lookup by defining value.
        std::map<int32_t, std::vector<int>> emits_by_value;
        for (size_t e = 0; e < vl.emissions.size(); ++e) {
            if (vl.emissions[e].value >= 0)
                emits_by_value[vl.emissions[e].value].push_back(
                    static_cast<int>(e));
        }

        std::vector<int> chunk_pcus;
        // (value -> producing chunk's out port) for forwarding.
        std::map<int32_t, std::pair<int, int>> fwd_src;

        for (size_t c = 0; c < part.chunks.size(); ++c) {
            const Chunk &ch = part.chunks[c];
            int pcu_idx = static_cast<int>(pcus_.size());
            pcus_.emplace_back();
            pcuPorts_.emplace_back();
            PcuCfg &cfg = pcus_.back();
            PortAlloc &pa = pcuPorts_.back();
            cfg.used = true;
            cfg.name = strfmt("%s#%zu", vl.name.c_str(), c);
            UnitRef ref{UnitClass::kPcu, static_cast<uint16_t>(pcu_idx)};

            // Chain (every chunk mirrors the leaf chain).
            cfg.chain = vl.chain;
            for (size_t lvl = 0; lvl < vl.dynBoundScalar.size(); ++lvl) {
                if (vl.dynBoundScalar[lvl] < 0)
                    continue;
                const ScalSource &ss =
                    vl.scalSources[vl.dynBoundScalar[lvl]];
                const CtrDecl &cd = prog_.ctrs[ss.ctr];
                cfg.chain.ctrs[lvl].maxFromScalarIn =
                    static_cast<int8_t>(scalarForSink(
                        ref, cd.boundSinkNode, cd.boundSinkIdx));
                cfg.chain.ctrs[lvl].boundScale = cd.boundScale;
            }

            // Scalar and vector input port maps for this chunk.
            std::map<int, int> scal_port;  // scalSource -> port
            std::map<int, int> vsrc_port;  // vecSource -> port
            std::map<int, int> fwd_port;   // value -> port
            auto scalPortFor = [&](int src_idx) {
                auto it = scal_port.find(src_idx);
                if (it != scal_port.end())
                    return it->second;
                const ScalSource &ss = vl.scalSources[src_idx];
                int port;
                if (ss.kind == ScalSource::Kind::kOuterCtr)
                    port = static_cast<int>(scalarForCtr(ref, ss.ctr));
                else if (ss.kind == ScalSource::Kind::kLeafScalar) {
                    const ScalarIn &si =
                        prog_.nodes[l].scalarIns[ss.scalarIn];
                    port = static_cast<int>(
                        scalarForSink(ref, si.fromNode, si.fromSink));
                } else {
                    const CtrDecl &cd = prog_.ctrs[ss.ctr];
                    port = static_cast<int>(scalarForSink(
                        ref, cd.boundSinkNode, cd.boundSinkIdx));
                }
                scal_port[src_idx] = port;
                return port;
            };
            auto vecPortFor = [&](int vsrc_idx) {
                auto it = vsrc_port.find(vsrc_idx);
                if (it != vsrc_port.end())
                    return it->second;
                int port = static_cast<int>(pa.vi++);
                vsrc_port[vsrc_idx] = port;
                vecSrcPorts_[{l, vsrc_idx}].push_back({pcu_idx, port});
                return port;
            };
            auto fwdPortFor = [&](int32_t value) {
                auto it = fwd_port.find(value);
                if (it != fwd_port.end())
                    return it->second;
                int port = static_cast<int>(pa.vi++);
                fwd_port[value] = port;
                auto src = fwd_src.find(value);
                panic_if(src == fwd_src.end(),
                         "forwarded value has no source");
                connect(NetKind::kVector,
                        {UnitClass::kPcu,
                         static_cast<uint16_t>(src->second.first)},
                        src->second.second, ref, port, P_.pcu.fifoDepth);
                return port;
            };

            // Register allocation (linear scan over chunk ops).
            std::map<int32_t, int> reg_of;
            std::vector<int32_t> reg_owner(P_.pcu.regsPerStage + 8, -1);
            auto allocReg = [&](int32_t value, int32_t at_op) {
                // Free registers whose values are dead.
                for (auto &owner : reg_owner) {
                    if (owner < 0)
                        continue;
                    bool needed =
                        last_use[owner] >= at_op ||
                        emits_by_value.count(owner) ||
                        (last_use[owner] > ch.lastOp);
                    if (!needed)
                        owner = -1;
                }
                for (size_t r = 0; r < reg_owner.size(); ++r) {
                    if (reg_owner[r] < 0) {
                        reg_owner[r] = value;
                        reg_of[value] = static_cast<int>(r);
                        return static_cast<int>(r);
                    }
                }
                panic("register allocation overflow in %s",
                      cfg.name.c_str());
            };

            auto operand = [&](int32_t value) -> Operand {
                if (value < 0)
                    return Operand::none();
                const VValue &v = vl.values[value];
                switch (v.kind) {
                  case VValue::Kind::kImm:
                    return Operand::immWord(v.imm);
                  case VValue::Kind::kCtr:
                    return Operand::ctr(static_cast<uint8_t>(v.index));
                  case VValue::Kind::kLane:
                    return Operand::laneId();
                  case VValue::Kind::kScalar:
                    return Operand::scalarIn(
                        static_cast<uint8_t>(scalPortFor(v.index)));
                  case VValue::Kind::kVecIn:
                    return Operand::vectorIn(
                        static_cast<uint8_t>(vecPortFor(v.index)));
                  case VValue::Kind::kOp: {
                    if (v.def >= ch.firstOp && v.def <= ch.lastOp)
                        return Operand::reg(
                            static_cast<uint8_t>(reg_of.at(value)));
                    return Operand::vectorIn(
                        static_cast<uint8_t>(fwdPortFor(value)));
                  }
                }
                return Operand::none();
            };

            // Build the stages.
            for (int32_t i = ch.firstOp; i <= ch.lastOp; ++i) {
                const VOp &op = vl.ops[i];
                StageCfg st;
                st.kind = op.kind;
                st.op = op.op;
                st.a = operand(op.a);
                st.b = operand(op.b);
                st.c = operand(op.c);
                st.setsMask = op.setsMask;
                st.reduceDist = op.reduceDist;
                st.accLevel = op.accLevel;
                st.dstReg = static_cast<uint8_t>(
                    allocReg(op.result, static_cast<int32_t>(i)));
                cfg.stages.push_back(st);
            }

            // Vector outputs: forwarded values and emissions.
            cfg.vecOuts.resize(P_.pcu.vectorOuts + 4);
            cfg.scalOuts.resize(P_.pcu.scalarOuts + 4);
            std::map<int32_t, int> vout_of_value;
            for (int32_t i = ch.firstOp; i <= ch.lastOp; ++i) {
                int32_t v = vl.ops[i].result;
                if (v < 0)
                    continue;
                if (last_use[v] > ch.lastOp) {
                    int port = static_cast<int>(pa.vo++);
                    vout_of_value[v] = port;
                    cfg.vecOuts[port].enabled = true;
                    cfg.vecOuts[port].srcReg =
                        static_cast<uint8_t>(reg_of.at(v));
                    cfg.vecOuts[port].cond = EmitCond::everyWavefront();
                    fwd_src[v] = {pcu_idx, port};
                }
                auto em_it = emits_by_value.find(v);
                if (em_it == emits_by_value.end())
                    continue;
                for (int e : em_it->second) {
                    const VEmission &em = vl.emissions[e];
                    if (em.kind == VEmission::Kind::kVecOut) {
                        int port;
                        auto shared = vout_of_value.find(v);
                        bool can_share =
                            shared != vout_of_value.end() &&
                            em.cond.always && !em.coalesce;
                        if (can_share) {
                            port = shared->second;
                        } else {
                            port = static_cast<int>(pa.vo++);
                            cfg.vecOuts[port].enabled = true;
                            cfg.vecOuts[port].srcReg =
                                static_cast<uint8_t>(reg_of.at(v));
                            cfg.vecOuts[port].cond = em.cond;
                            cfg.vecOuts[port].coalesce = em.coalesce;
                        }
                        emitVec_[{l, e}] = {pcu_idx, port};
                    } else if (em.kind == VEmission::Kind::kScalOut) {
                        int port = static_cast<int>(pa.so++);
                        cfg.scalOuts[port].enabled = true;
                        cfg.scalOuts[port].srcReg =
                            static_cast<uint8_t>(reg_of.at(v));
                        cfg.scalOuts[port].cond = em.cond;
                        emitScal_[{l, e}] = {pcu_idx, port};
                        sinkScalar_[{l, em.sinkIdx}] = {pcu_idx, port};
                    }
                }
            }
            // Count emissions attach to the coalescing port's chunk.
            for (size_t e = 0; e < vl.emissions.size(); ++e) {
                const VEmission &em = vl.emissions[e];
                if (em.kind != VEmission::Kind::kCountOut)
                    continue;
                // Find the coalescing emission of the same sink.
                for (size_t e2 = 0; e2 < vl.emissions.size(); ++e2) {
                    const VEmission &vo = vl.emissions[e2];
                    if (vo.kind != VEmission::Kind::kVecOut ||
                        !vo.coalesce || vo.sinkIdx != em.countOfSink)
                        continue;
                    auto src = emitVec_.find({l, static_cast<int>(e2)});
                    if (src == emitVec_.end() ||
                        src->second.pcu != pcu_idx)
                        continue;
                    int port = static_cast<int>(pa.so++);
                    cfg.scalOuts[port].enabled = true;
                    cfg.scalOuts[port].countOfVecOut =
                        static_cast<int8_t>(src->second.port);
                    emitScal_[{l, static_cast<int>(e)}] = {pcu_idx, port};
                    sinkScalar_[{l, em.sinkIdx}] = {pcu_idx, port};
                }
            }

            if (pa.vi > P_.pcu.vectorIns || pa.vo > P_.pcu.vectorOuts ||
                pa.si > P_.pcu.scalarIns || pa.so > P_.pcu.scalarOuts) {
                fail(strfmt("%s: port overflow (vi=%u vo=%u si=%u so=%u)",
                            cfg.name.c_str(), pa.vi, pa.vo, pa.si,
                            pa.so));
            }

            chunk_pcus.push_back(pcu_idx);
            clusters_[l].triggers.push_back({ref, CtrlSel::kMain});
            // Only effect-bearing units report done (keeps the token
            // fan-in at parent boxes small); the final chunk carries
            // the leaf's scalar/argOut effects.
            if (c + 1 == part.chunks.size()) {
                clusters_[l].dones.push_back({ref, CtrlSel::kMain});
                lastPcu_[l] = {ref, CtrlSel::kMain};
            }
        }
        leafPcus_[l] = chunk_pcus;
    }
}

// =====================================================================
// PMU construction
// =====================================================================

void
Mapper::createPmus()
{
    for (size_t m = 0; m < prog_.mems.size(); ++m) {
        if (prog_.mems[m].kind != MemKind::kSram)
            continue;
        MemId mid = static_cast<MemId>(m);
        const MemDecl &md = prog_.mems[m];
        std::vector<ReaderDesc> &rds = readers_[mid];
        std::vector<WriterDesc> &wrs = writers_[mid];
        if (rds.empty() && wrs.empty())
            continue;
        if (wrs.size() > 2) {
            failBinding("pmu.writePorts",
                        strfmt("memory '%s' has %zu writers (max 2)",
                               md.name.c_str(), wrs.size()));
            return;
        }
        if (rds.empty()) {
            warn("memory '%s' is written but never read", md.name.c_str());
            rds.push_back({ReaderDesc::Kind::kLeafLoad, kNone, -1});
        }

        // Scratchpad capacity: the requested N-buffer depth may not fit
        // the physical PMU (or the 8-bit config field). If a shallower
        // depth would fit, record a spill request so the driver can cap
        // the contributing metapipes and re-partition; otherwise the
        // memory is simply too large and the failure is final.
        uint64_t effective = md.mode == BankingMode::kDup
                                 ? P_.pmu.totalWords() / P_.pmu.banks
                                 : P_.pmu.totalWords();
        uint64_t nbuf = nbuf_[mid];
        if (md.sizeWords > 0 &&
            (nbuf * md.sizeWords > effective || nbuf > 255)) {
            uint64_t maxBufs =
                std::min<uint64_t>(effective / md.sizeWords, 255);
            uint32_t floorBufs = std::max<uint32_t>(md.nbufMin, 1);
            bool spillable = opts_.allowSpill && maxBufs >= floorBufs &&
                             maxBufs < nbuf &&
                             !nbufContrib_[mid].empty();
            if (spillable) {
                SpillReq &req = spillReqs_[mid];
                req.fromBufs = static_cast<uint32_t>(nbuf);
                req.toBufs = static_cast<uint32_t>(maxBufs);
                req.nodes = nbufContrib_[mid];
            }
            failBinding(
                "pmu.scratchpad",
                strfmt("memory '%s' needs %llu words (%llu bufs x %u), "
                       "PMU scratchpad holds %llu",
                       md.name.c_str(),
                       static_cast<unsigned long long>(nbuf *
                                                       md.sizeWords),
                       static_cast<unsigned long long>(nbuf),
                       static_cast<uint32_t>(md.sizeWords),
                       static_cast<unsigned long long>(effective)));
            return;
        }

        for (const ReaderDesc &rd : rds) {
            curConsumer_ = rd.node;
            int pmu_idx = static_cast<int>(pmus_.size());
            pmus_.emplace_back();
            pmuPorts_.emplace_back();
            PmuCfg &cfg = pmus_.back();
            cfg.used = true;
            cfg.name = strfmt("%s@%d", md.name.c_str(), pmu_idx);
            UnitRef ref{UnitClass::kPmu, static_cast<uint16_t>(pmu_idx)};

            cfg.scratch.mode = md.mode;
            cfg.scratch.numBufs = static_cast<uint8_t>(nbuf_[mid]);
            cfg.scratch.sizeWords = static_cast<uint32_t>(md.sizeWords);

            // ---- read port ------------------------------------------
            if (rd.node != kNone) {
                PmuPortCfg &rp = cfg.read;
                rp.enabled = true;
                rp.dataVecOut = 0;
                if (nbuf_[mid] > 1)
                    rp.swapEvery = 1;
                switch (rd.kind) {
                  case ReaderDesc::Kind::kLeafLoad: {
                    const VirtualLeaf &vl = vleaves_[rd.node];
                    const VecSource &src = vl.vecSources[rd.vecSource];
                    rp.chain = buildChain(vl.ctrIds, ref);
                    if (nbuf_[mid] > 1) {
                        int64_t se = runsPerIter(rd.node, rotNode_[mid]);
                        rp.swapEvery = se < 0 ? 1
                                              : static_cast<uint32_t>(se);
                    }
                    if (src.access == AccessClass::kGather) {
                        rp.addrVecIn =
                            static_cast<int8_t>(portsOf(ref).vi++);
                        auto es = std::find_if(
                            vl.emissions.begin(), vl.emissions.end(),
                            [&](const VEmission &em) {
                                return em.gatherVecSource ==
                                       rd.vecSource;
                            });
                        panic_if(es == vl.emissions.end(),
                                 "gather without address emission");
                        int e_idx = static_cast<int>(
                            es - vl.emissions.begin());
                        EmitSrc esrc = emitVec_.at({rd.node, e_idx});
                        connect(NetKind::kVector,
                                {UnitClass::kPcu,
                                 static_cast<uint16_t>(esrc.pcu)},
                                esrc.port, ref,
                                static_cast<uint32_t>(rp.addrVecIn),
                                P_.pcu.fifoDepth);
                    } else {
                        rp.vecLinear =
                            src.access == AccessClass::kVecLinear;
                        rp.broadcast =
                            src.access == AccessClass::kBroadcast;
                        rp.addrStages = addrStages(
                            prog_.exprs[src.expr].addr, vl.ctrIds, ref,
                            rp.addrReg);
                    }
                    // Data to every consuming chunk.
                    for (auto [pcu, port] :
                         vecSrcPorts_[{rd.node, rd.vecSource}]) {
                        connect(NetKind::kVector, ref, 0,
                                {UnitClass::kPcu,
                                 static_cast<uint16_t>(pcu)},
                                port, P_.pcu.fifoDepth);
                    }
                    clusters_[rd.node].triggers.push_back(
                        {ref, CtrlSel::kPmuRead});
                    readHandles_[{mid, rd.node}].push_back(
                        {ref, CtrlSel::kPmuRead});
                    break;
                  }
                  case ReaderDesc::Kind::kXferStore:
                  case ReaderDesc::Kind::kGatherAddr: {
                    const TransferDesc &x = prog_.nodes[rd.node].xfer;
                    // Linear read over rows x rowWords (store) or the
                    // gather's address list.
                    CounterCfg rows, wordsc;
                    int64_t stride;
                    if (rd.kind == ReaderDesc::Kind::kXferStore) {
                        rows.max = x.rows;
                        wordsc.max = x.rowWords;
                        stride = x.sramRowStride;
                    } else {
                        rows.max = 1;
                        wordsc.max = x.rowWords;
                        stride = 0;
                    }
                    wordsc.vectorized = true;
                    if (rd.kind == ReaderDesc::Kind::kGatherAddr &&
                        x.countSinkNode != kNone) {
                        wordsc.maxFromScalarIn = static_cast<int8_t>(
                            scalarForSink(ref, x.countSinkNode,
                                          x.countSinkIdx));
                        wordsc.boundScale = x.countScale;
                    }
                    rp.chain.ctrs = {rows, wordsc};
                    rp.vecLinear = true;
                    StageCfg st;
                    st.op = FuOp::kIMul;
                    st.a = Operand::ctr(0);
                    st.b = Operand::immInt(
                        static_cast<int32_t>(stride));
                    st.dstReg = 0;
                    StageCfg st2;
                    st2.op = FuOp::kIAdd;
                    st2.a = Operand::reg(0);
                    st2.b = Operand::ctr(1);
                    st2.dstReg = 1;
                    rp.addrStages = {st, st2};
                    rp.addrReg = 1;
                    if (nbuf_[mid] > 1) {
                        int64_t se = runsPerIter(rd.node, rotNode_[mid]);
                        rp.swapEvery = se < 0 ? 1
                                              : static_cast<uint32_t>(se);
                    }
                    clusters_[rd.node].triggers.push_back(
                        {ref, CtrlSel::kPmuRead});
                    readHandles_[{mid, rd.node}].push_back(
                        {ref, CtrlSel::kPmuRead});
                    // Data destination (the AG) is wired in createAgs.
                    xferReadPmu_[rd.node] = pmu_idx;
                    break;
                  }
                }
            }

            // ---- write ports ------------------------------------------
            for (size_t w = 0; w < wrs.size(); ++w) {
                const WriterDesc &wd = wrs[w];
                curConsumer_ = wd.node;
                PmuPortCfg &wp = (w == 0) ? cfg.write : cfg.write2;
                wp.enabled = true;
                uint32_t nbuf = nbuf_[mid];
                int64_t se = nbuf > 1 ? runsPerIter(wd.node,
                                                    rotNode_[mid])
                                      : 0;
                // Later-declared writers in a read-before-write cycle
                // start one buffer ahead (frontier ping-pong).
                // Heuristic: second writer keeps buffer 0.
                switch (wd.kind) {
                  case WriterDesc::Kind::kLeafSink: {
                    const VirtualLeaf &vl = vleaves_[wd.node];
                    const Node &leaf = prog_.nodes[wd.node];
                    const Sink &sk = leaf.sinks[wd.sinkIdx];
                    // Find the value emission for this sink.
                    int val_e = -1, addr_e = -1;
                    for (size_t e = 0; e < vl.emissions.size(); ++e) {
                        const VEmission &em = vl.emissions[e];
                        if (em.sinkIdx != wd.sinkIdx ||
                            em.kind != VEmission::Kind::kVecOut)
                            continue;
                        if (em.scatterAddrForSink >= 0)
                            addr_e = static_cast<int>(e);
                        else if (em.gatherVecSource < 0)
                            val_e = static_cast<int>(e);
                    }
                    panic_if(val_e < 0, "sink emission missing");
                    EmitSrc vsrc = emitVec_.at({wd.node, val_e});
                    wp.dataVecIn = static_cast<int8_t>(portsOf(ref).vi++);
                    uint32_t cap = P_.pcu.fifoDepth;
                    if (sk.kind == SinkKind::kFlatMapSram)
                        cap = static_cast<uint32_t>(
                            md.sizeWords / P_.pcu.lanes + 4);
                    connect(NetKind::kVector,
                            {UnitClass::kPcu,
                             static_cast<uint16_t>(vsrc.pcu)},
                            vsrc.port, ref, wp.dataVecIn, cap);

                    if (sk.kind == SinkKind::kFlatMapSram) {
                        // Append-mode: one vectorized counter bounded
                        // by the produced count.
                        CounterCfg cc;
                        cc.vectorized = true;
                        cc.maxFromScalarIn =
                            static_cast<int8_t>(scalarForSink(
                                ref, wd.node, wd.sinkIdx));
                        wp.chain.ctrs = {cc};
                        wp.appendMode = true;
                    } else if (addr_e >= 0) {
                        // Scatter within the scratchpad.
                        EmitSrc asrc = emitVec_.at({wd.node, addr_e});
                        wp.addrVecIn =
                            static_cast<int8_t>(portsOf(ref).vi++);
                        connect(NetKind::kVector,
                                {UnitClass::kPcu,
                                 static_cast<uint16_t>(asrc.pcu)},
                                asrc.port, ref, wp.addrVecIn,
                                P_.pcu.fifoDepth);
                        wp.chain = buildChain(vl.ctrIds, ref);
                        wp.accumulate = sk.accumulate;
                        wp.accumOp = sk.accumOp;
                    } else if (sk.kind == SinkKind::kFold) {
                        // Chain: counters outside the fold (+ the
                        // vectorized counter for per-lane folds).
                        std::vector<CtrId> wctrs;
                        for (CtrId cid : vl.ctrIds) {
                            if (cid == sk.foldLevel)
                                break;
                            wctrs.push_back(cid);
                        }
                        if (!sk.crossLane)
                            wctrs.push_back(vl.ctrIds.back());
                        wp.chain = buildChain(wctrs, ref);
                        wp.vecLinear = !sk.crossLane;
                        wp.addrStages = addrStages(sk.addr, wctrs, ref,
                                                   wp.addrReg);
                        wp.accumulate = sk.accumulate;
                        wp.accumOp = sk.accumOp;
                    } else {
                        // Plain linear store.
                        wp.chain = buildChain(vl.ctrIds, ref);
                        wp.vecLinear = true;
                        wp.addrStages = addrStages(sk.addr, vl.ctrIds,
                                                   ref, wp.addrReg);
                        wp.accumulate = sk.accumulate;
                        wp.accumOp = sk.accumOp;
                    }
                    if (wp.accumulate) {
                        // Clear at the declared generation boundary.
                        NodeId at = md.clearAt;
                        int64_t ce = at == kNeverClear
                                         ? 0
                                         : at == kNone
                                               ? 1
                                               : runsPerIter(wd.node, at);
                        if (ce < 0) {
                            warn("memory '%s': dynamic generation "
                                 "period, clearing every run",
                                 md.name.c_str());
                            ce = 1;
                        }
                        wp.clearEvery = static_cast<uint32_t>(ce);
                        // 0 = persistent accumulator, never cleared.
                    }
                    break;
                  }
                  case WriterDesc::Kind::kXferLoad: {
                    const TransferDesc &x = prog_.nodes[wd.node].xfer;
                    CounterCfg rows, wordsc;
                    rows.max = x.rows;
                    wordsc.vectorized = true;
                    if (x.rowWordsArg != kNone)
                        wordsc.max = wordToInt(
                            prog_.args[x.rowWordsArg].value);
                    else
                        wordsc.max = x.rowWords;
                    wp.chain.ctrs = {rows, wordsc};
                    wp.vecLinear = true;
                    StageCfg st;
                    st.op = FuOp::kIMul;
                    st.a = Operand::ctr(0);
                    st.b = Operand::immInt(
                        static_cast<int32_t>(x.sramRowStride));
                    st.dstReg = 0;
                    StageCfg st2;
                    st2.op = FuOp::kIAdd;
                    st2.a = Operand::reg(0);
                    st2.b = Operand::ctr(1);
                    st2.dstReg = 1;
                    wp.addrStages = {st, st2};
                    wp.addrReg = 1;
                    wp.dataVecIn =
                        static_cast<int8_t>(portsOf(ref).vi++);
                    // Channel from the AG is wired in createAgs.
                    xferWritePorts_[wd.node].push_back(
                        {pmu_idx, wp.dataVecIn});
                    break;
                  }
                  case WriterDesc::Kind::kGatherDst: {
                    const TransferDesc &x = prog_.nodes[wd.node].xfer;
                    CounterCfg cc;
                    cc.vectorized = true;
                    cc.max = x.rowWords;
                    if (x.countSinkNode != kNone) {
                        cc.maxFromScalarIn = static_cast<int8_t>(
                            scalarForSink(ref, x.countSinkNode,
                                          x.countSinkIdx));
                        cc.boundScale = x.countScale;
                    }
                    wp.chain.ctrs = {cc};
                    wp.vecLinear = true;
                    StageCfg st;
                    st.op = FuOp::kNop;
                    st.a = Operand::ctr(0);
                    st.dstReg = 0;
                    wp.addrStages = {st};
                    wp.addrReg = 0;
                    wp.dataVecIn =
                        static_cast<int8_t>(portsOf(ref).vi++);
                    xferWritePorts_[wd.node].push_back(
                        {pmu_idx, wp.dataVecIn});
                    break;
                  }
                }
                if (nbuf > 1)
                    wp.swapEvery =
                        se <= 0 ? 1 : static_cast<uint32_t>(se);

                CtrlSel sel = (w == 0) ? CtrlSel::kPmuWrite
                                       : CtrlSel::kPmuWrite2;
                clusters_[wd.node].triggers.push_back({ref, sel});
                clusters_[wd.node].dones.push_back({ref, sel});
                writeHandles_[{mid, wd.node, rd.node}].push_back(
                    {ref, sel});
                allWriteHandles_[{mid, wd.node}].push_back({ref, sel});
            }

            // Remember the PMU of transfer readers/writers for AG wiring.
            pmuOfReader_[{mid, rd.node, rd.vecSource}] = pmu_idx;
        }
    }
}

// =====================================================================
// AG construction
// =====================================================================

void
Mapper::createAgs()
{
    auto newAg = [&](const std::string &name) -> int {
        int idx = static_cast<int>(ags_.size());
        ags_.emplace_back();
        agPorts_.emplace_back();
        ags_.back().used = true;
        ags_.back().name = name;
        return idx;
    };

    // ---- transfers ---------------------------------------------------
    for (NodeId t : xfers_) {
        curConsumer_ = t;
        const TransferDesc &x = prog_.nodes[t].xfer;
        int ag = newAg(prog_.nodes[t].name);
        AgCfg &cfg = ags_[ag];
        UnitRef ref{UnitClass::kAg, static_cast<uint16_t>(ag)};
        cfg.base = dramBase_[x.dram];

        if (x.sparse) {
            cfg.mode = AgMode::kSparseLoad;
            CounterCfg cc;
            cc.vectorized = true;
            cc.max = x.rowWords;
            if (x.countSinkNode != kNone) {
                cc.maxFromScalarIn = static_cast<int8_t>(scalarForSink(
                    ref, x.countSinkNode, x.countSinkIdx));
                cc.boundScale = x.countScale;
            }
            cfg.chain.ctrs = {cc};
            cfg.addrVecIn = static_cast<int8_t>(agPorts_[ag].vi++);
            cfg.dataVecOut = 0;
            int src_pmu = xferReadPmu_.at(t);
            connect(NetKind::kVector,
                    {UnitClass::kPmu, static_cast<uint16_t>(src_pmu)}, 0,
                    ref, cfg.addrVecIn, P_.pcu.fifoDepth);
            for (auto [pmu, port] : xferWritePorts_[t]) {
                connect(NetKind::kVector, ref, 0,
                        {UnitClass::kPmu, static_cast<uint16_t>(pmu)},
                        port, P_.pcu.fifoDepth);
            }
        } else if (x.load) {
            cfg.mode = AgMode::kDenseLoad;
            int64_t row_words =
                x.rowWordsArg != kNone
                    ? wordToInt(prog_.args[x.rowWordsArg].value)
                    : x.rowWords;
            // A command may not exceed the coalescing unit's
            // outstanding-burst budget; split long rows into the
            // largest dividing block of at most 256 words.
            int64_t block = std::min<int64_t>(row_words, 256);
            while (block > 1 && row_words % block)
                --block;
            CounterCfg rows, wblk;
            rows.max = x.rows;
            wblk.max = row_words;
            wblk.step = block;
            cfg.chain.ctrs = {rows, wblk};
            cfg.wordsPerCmd = static_cast<uint32_t>(block);
            // addr = base expr + row * dramRowStride + wblk
            uint8_t base_reg = 0;
            cfg.addrStages =
                addrStages(x.base, {}, ref, base_reg);
            uint8_t next = static_cast<uint8_t>(cfg.addrStages.size());
            StageCfg mul;
            mul.op = FuOp::kIMA;
            mul.a = Operand::ctr(0);
            mul.b = Operand::immInt(
                static_cast<int32_t>(x.dramRowStride));
            mul.c = Operand::ctr(1);
            mul.dstReg = next;
            StageCfg add;
            add.op = FuOp::kIAdd;
            add.a = Operand::reg(base_reg);
            add.b = Operand::reg(next);
            add.dstReg = static_cast<uint8_t>(next + 1);
            cfg.addrStages.push_back(mul);
            cfg.addrStages.push_back(add);
            cfg.addrReg = add.dstReg;
            cfg.dataVecOut = 0;
            for (auto [pmu, port] : xferWritePorts_[t]) {
                connect(NetKind::kVector, ref, 0,
                        {UnitClass::kPmu, static_cast<uint16_t>(pmu)},
                        port, P_.pcu.fifoDepth);
            }
        } else {
            cfg.mode = AgMode::kDenseStore;
            CounterCfg rows, words;
            rows.max = x.rows;
            words.max = x.rowWords;
            words.step = P_.pcu.lanes;
            cfg.chain.ctrs = {rows, words};
            uint8_t base_reg = 0;
            cfg.addrStages = addrStages(x.base, {}, ref, base_reg);
            uint8_t next = static_cast<uint8_t>(cfg.addrStages.size());
            StageCfg mul;
            mul.op = FuOp::kIMul;
            mul.a = Operand::ctr(0);
            mul.b = Operand::immInt(
                static_cast<int32_t>(x.dramRowStride));
            mul.dstReg = next;
            StageCfg add;
            add.op = FuOp::kIAdd;
            add.a = Operand::reg(base_reg);
            add.b = Operand::reg(next);
            add.dstReg = static_cast<uint8_t>(next + 1);
            StageCfg add2;
            add2.op = FuOp::kIAdd;
            add2.a = Operand::reg(add.dstReg);
            add2.b = Operand::ctr(1);
            add2.dstReg = static_cast<uint8_t>(next + 2);
            cfg.addrStages.push_back(mul);
            cfg.addrStages.push_back(add);
            cfg.addrStages.push_back(add2);
            cfg.addrReg = add2.dstReg;
            cfg.dataVecIn = static_cast<int8_t>(agPorts_[ag].vi++);
            int src_pmu = xferReadPmu_.at(t);
            connect(NetKind::kVector,
                    {UnitClass::kPmu, static_cast<uint16_t>(src_pmu)}, 0,
                    ref, cfg.dataVecIn, P_.pcu.fifoDepth);
        }
        clusters_[t].triggers.push_back({ref, CtrlSel::kMain});
        if (cfg.mode == AgMode::kDenseStore ||
            cfg.mode == AgMode::kSparseStore) {
            clusters_[t].dones.push_back({ref, CtrlSel::kMain});
            storeAgs_[t].push_back({ref, CtrlSel::kMain});
        }
    }

    // ---- compute-leaf DRAM streams ------------------------------------
    for (NodeId l : leaves_) {
        curConsumer_ = l;
        const VirtualLeaf &vl = vleaves_[l];
        const Node &leaf = prog_.nodes[l];
        for (size_t v = 0; v < vl.vecSources.size(); ++v) {
            const VecSource &src = vl.vecSources[v];
            if (src.kind != VecSource::Kind::kDramStream)
                continue;
            const StreamIn &si =
                leaf.streamIns[prog_.exprs[src.expr].stream];
            int ag = newAg(strfmt("%s.str%zu", vl.name.c_str(), v));
            AgCfg &cfg = ags_[ag];
            UnitRef ref{UnitClass::kAg, static_cast<uint16_t>(ag)};
            cfg.mode = AgMode::kDenseLoad;
            cfg.base = dramBase_[si.dram];
            cfg.chain = buildChain(vl.ctrIds, ref, /*devectorize=*/true);
            cfg.wordsPerCmd = P_.pcu.lanes;
            cfg.addrStages =
                addrStages(si.addr, vl.ctrIds, ref, cfg.addrReg);
            cfg.dataVecOut = 0;
            for (auto [pcu, port] :
                 vecSrcPorts_[{l, static_cast<int>(v)}]) {
                connect(NetKind::kVector, ref, 0,
                        {UnitClass::kPcu, static_cast<uint16_t>(pcu)},
                        port, P_.pcu.fifoDepth);
            }
            clusters_[l].triggers.push_back({ref, CtrlSel::kMain});
        }

        // ---- DRAM store / scatter sinks ------------------------------
        for (size_t s = 0; s < leaf.sinks.size(); ++s) {
            const Sink &sk = leaf.sinks[s];
            if (sk.kind != SinkKind::kStreamOut &&
                sk.kind != SinkKind::kScatterOut)
                continue;
            int val_e = -1, addr_e = -1;
            for (size_t e = 0; e < vl.emissions.size(); ++e) {
                const VEmission &em = vl.emissions[e];
                if (em.sinkIdx != static_cast<int32_t>(s) ||
                    em.kind != VEmission::Kind::kVecOut)
                    continue;
                if (em.scatterAddrForSink >= 0)
                    addr_e = static_cast<int>(e);
                else
                    val_e = static_cast<int>(e);
            }
            panic_if(val_e < 0, "stream-out emission missing");
            int ag = newAg(strfmt("%s.out%zu", vl.name.c_str(), s));
            AgCfg &cfg = ags_[ag];
            UnitRef ref{UnitClass::kAg, static_cast<uint16_t>(ag)};
            cfg.base = dramBase_[sk.dram];
            cfg.chain = buildChain(vl.ctrIds, ref, /*devectorize=*/true);
            EmitSrc vsrc = emitVec_.at({l, val_e});
            cfg.dataVecIn = static_cast<int8_t>(agPorts_[ag].vi++);
            connect(NetKind::kVector,
                    {UnitClass::kPcu, static_cast<uint16_t>(vsrc.pcu)},
                    vsrc.port, ref, cfg.dataVecIn, P_.pcu.fifoDepth);
            if (sk.kind == SinkKind::kStreamOut) {
                cfg.mode = AgMode::kDenseStore;
                cfg.addrStages =
                    addrStages(sk.dramAddr, vl.ctrIds, ref, cfg.addrReg);
            } else {
                cfg.mode = AgMode::kSparseStore;
                panic_if(addr_e < 0, "scatter without address stream");
                EmitSrc asrc = emitVec_.at({l, addr_e});
                cfg.addrVecIn = static_cast<int8_t>(agPorts_[ag].vi++);
                connect(NetKind::kVector,
                        {UnitClass::kPcu,
                         static_cast<uint16_t>(asrc.pcu)},
                        asrc.port, ref, cfg.addrVecIn, P_.pcu.fifoDepth);
            }
            clusters_[l].triggers.push_back({ref, CtrlSel::kMain});
            clusters_[l].dones.push_back({ref, CtrlSel::kMain});
            storeAgs_[l].push_back({ref, CtrlSel::kMain});
        }
    }
}

// =====================================================================
// Control boxes
// =====================================================================

void
Mapper::createBoxes()
{
    for (NodeId o : outers_) {
        curConsumer_ = o;
        const Node &n = prog_.nodes[o];
        int idx = static_cast<int>(boxes_.size());
        boxes_.emplace_back();
        boxPorts_.emplace_back();
        ControlBoxCfg &cfg = boxes_.back();
        cfg.used = true;
        cfg.name = n.name;
        cfg.scheme = n.scheme;
        UnitRef ref{UnitClass::kBox, static_cast<uint16_t>(idx)};
        cfg.chain = buildChain(n.ctrs, ref);
        cfg.depth =
            n.scheme == CtrlScheme::kMetapipe ? metapipeDepth(o) : 1;
        boxOf_[o] = idx;
        clusters_[o].triggers.push_back({ref, CtrlSel::kMain});
        clusters_[o].dones.push_back({ref, CtrlSel::kMain});
    }
    rootBox_ = boxOf_.at(prog_.root);
}

// =====================================================================
// Scalar wiring (counter exports, cross-leaf scalars, argOuts)
// =====================================================================

void
Mapper::wireScalars()
{
    hostArgOuts_ = prog_.numArgOuts;

    for (const ScalarReq &req : scalarReqs_) {
        if (req.isCtr) {
            auto own = ctrOwner_.find(req.ctr);
            if (own == ctrOwner_.end()) {
                fail(strfmt("counter '%s' referenced but not owned by "
                            "any controller",
                            prog_.ctrs[req.ctr].name.c_str()));
                return;
            }
            int box = boxOf_.at(own->second);
            auto ex = exports_.find(req.ctr);
            int port;
            if (ex == exports_.end()) {
                port = static_cast<int>(boxPorts_[box].so++);
                // Find the counter's level in the owner's chain.
                const Node &on = prog_.nodes[own->second];
                int lvl = -1;
                for (size_t i = 0; i < on.ctrs.size(); ++i) {
                    if (on.ctrs[i] == req.ctr)
                        lvl = static_cast<int>(i);
                }
                panic_if(lvl < 0, "export level lookup failed");
                boxes_[box].exports.push_back(
                    {static_cast<uint8_t>(lvl),
                     static_cast<uint8_t>(port)});
                exports_[req.ctr] = {box, port};
            } else {
                port = ex->second.second;
            }
            connect(NetKind::kScalar,
                    {UnitClass::kBox, static_cast<uint16_t>(box)},
                    static_cast<uint32_t>(port), req.unit, req.port, 32);
            // The consumer may run several times per exported value.
            int64_t pe = req.consumer != kNone
                             ? runsPerIter(req.consumer, own->second)
                             : 1;
            chans_.back().dstPopEvery =
                pe > 0 ? static_cast<uint32_t>(pe) : 1;
        } else {
            auto src = sinkScalar_.find({req.sinkNode, req.sinkIdx});
            if (src == sinkScalar_.end()) {
                fail(strfmt("scalar stream source (node %d, sink %d) "
                            "not found",
                            req.sinkNode, req.sinkIdx));
                return;
            }
            connect(NetKind::kScalar,
                    {UnitClass::kPcu,
                     static_cast<uint16_t>(src->second.pcu)},
                    src->second.port, req.unit, req.port, 32);
        }
    }

    // Host argOut channels.
    for (NodeId l : leaves_) {
        const Node &leaf = prog_.nodes[l];
        for (size_t s = 0; s < leaf.sinks.size(); ++s) {
            const Sink &sk = leaf.sinks[s];
            int slot = -1;
            if (sk.kind == SinkKind::kFold &&
                sk.dest == FoldDest::kArgOut)
                slot = sk.argOut;
            else if (sk.kind == SinkKind::kFlatMapSram &&
                     sk.countArgOut != kNone)
                slot = sk.countArgOut;
            if (slot < 0)
                continue;
            auto src = sinkScalar_.find({l, static_cast<int32_t>(s)});
            if (src == sinkScalar_.end()) {
                fail(strfmt("argOut source missing for %s sink %zu",
                            leaf.name.c_str(), s));
                return;
            }
            connect(NetKind::kScalar,
                    {UnitClass::kPcu,
                     static_cast<uint16_t>(src->second.pcu)},
                    src->second.port,
                    {UnitClass::kHost, 0}, static_cast<uint32_t>(slot),
                    64);
        }
    }
}

// =====================================================================
// Control wiring (tokens; §3.5)
// =====================================================================

void
Mapper::wireControl()
{
    for (NodeId o : outers_) {
        const Node &n = prog_.nodes[o];
        int box = boxOf_.at(o);
        UnitRef bref{UnitClass::kBox, static_cast<uint16_t>(box)};
        const size_t k = n.children.size();

        // Data-dependence edges between children (program order).
        std::vector<std::set<MemId>> reads(k), writes(k);
        for (size_t i = 0; i < k; ++i)
            memsTouched(n.children[i], reads[i], writes[i]);
        std::vector<std::vector<size_t>> succ(k);
        std::vector<bool> has_pred(k, false), has_succ(k, false);
        if (n.scheme != CtrlScheme::kStream) {
            for (size_t i = 0; i < k; ++i) {
                for (size_t j = i + 1; j < k; ++j) {
                    bool dep = false;
                    for (MemId m : writes[i]) {
                        if (reads[j].count(m) || writes[j].count(m))
                            dep = true;
                    }
                    for (MemId m : reads[i]) {
                        if (writes[j].count(m))
                            dep = true;
                    }
                    if (dep) {
                        succ[i].push_back(j);
                        has_pred[j] = true;
                        has_succ[i] = true;
                    }
                }
            }
        }

        for (size_t i = 0; i < k; ++i) {
            const Cluster &cl = clusters_[n.children[i]];
            // Heads get start tokens from the box.
            if (!has_pred[i]) {
                for (const CtrlHandle &t : cl.triggers) {
                    uint32_t op = allocCtlOut(bref);
                    uint32_t ip = allocCtlIn(t.unit);
                    boxes_[box].childStartOuts.push_back(
                        static_cast<uint8_t>(op));
                    ctrlOf(t).tokenIns.push_back(
                        static_cast<uint8_t>(ip));
                    connect(NetKind::kControl, bref, op, t.unit, ip, 32);
                }
            }
            // Edges to dependent siblings: tokens come from the
            // precise effect units of the shared data.
            for (size_t j : succ[i]) {
                const Cluster &cj = clusters_[n.children[j]];
                std::vector<CtrlHandle> dones;
                NodeId ci = n.children[i], cjn = n.children[j];
                if (prog_.nodes[ci].kind == NodeKind::kOuter) {
                    dones = cl.dones; // the box, once per iteration
                } else {
                    auto inSubtree = [&](NodeId x, NodeId top) {
                        for (NodeId a = x; a != kNone;
                             a = prog_.nodes[a].parent) {
                            if (a == top)
                                return true;
                        }
                        return false;
                    };
                    // RAW: writes(i) read inside subtree(j).
                    for (MemId m : writes[i]) {
                        if (!reads[j].count(m) && !writes[j].count(m))
                            continue;
                        if (prog_.mems[m].kind == MemKind::kDram) {
                            for (const CtrlHandle &h : storeAgs_[ci])
                                dones.push_back(h);
                            continue;
                        }
                        bool found_reader = false;
                        for (const ReaderDesc &r : readers_[m]) {
                            if (r.node == kNone ||
                                !inSubtree(r.node, cjn))
                                continue;
                            auto it = writeHandles_.find(
                                {m, ci, r.node});
                            if (it != writeHandles_.end()) {
                                for (const CtrlHandle &h : it->second)
                                    dones.push_back(h);
                                found_reader = true;
                            }
                        }
                        if (!found_reader) {
                            for (const CtrlHandle &h :
                                 allWriteHandles_[{m, ci}])
                                dones.push_back(h);
                        }
                    }
                    // WAR: reads(i) overwritten by subtree(j).
                    for (MemId m : reads[i]) {
                        if (!writes[j].count(m))
                            continue;
                        if (prog_.mems[m].kind == MemKind::kDram) {
                            auto lp = lastPcu_.find(ci);
                            if (lp != lastPcu_.end())
                                dones.push_back(lp->second);
                            continue;
                        }
                        for (const CtrlHandle &h :
                             readHandles_[{m, ci}])
                            dones.push_back(h);
                    }
                    if (dones.empty())
                        dones = cl.dones; // conservative fallback
                    // Deduplicate handles.
                    std::sort(dones.begin(), dones.end(),
                              [](const CtrlHandle &a,
                                 const CtrlHandle &b) {
                                  return std::make_tuple(
                                             a.unit.cls, a.unit.index,
                                             a.sel) <
                                         std::make_tuple(b.unit.cls,
                                                         b.unit.index,
                                                         b.sel);
                              });
                    dones.erase(
                        std::unique(
                            dones.begin(), dones.end(),
                            [](const CtrlHandle &a,
                               const CtrlHandle &b) {
                                return a.unit == b.unit &&
                                       a.sel == b.sel;
                            }),
                        dones.end());
                }
                for (const CtrlHandle &d : dones) {
                    for (const CtrlHandle &t : cj.triggers)
                        tokenEdge(d, t);
                }
            }
            // Tails report done to the box.
            if (!has_succ[i]) {
                for (const CtrlHandle &d : cl.dones) {
                    uint32_t op = allocCtlOut(d.unit);
                    uint32_t ip = allocCtlIn(bref);
                    ctrlOf(d).doneOuts.push_back(
                        static_cast<uint8_t>(op));
                    boxes_[box].childDoneIns.push_back(
                        static_cast<uint8_t>(ip));
                    connect(NetKind::kControl, d.unit, op, bref, ip, 32);
                }
            }
        }
    }
}

// =====================================================================
// Placement and routing
// =====================================================================

bool
Mapper::placeAndRoute(FabricConfig &fab)
{
    auto maskedCount = [](const std::vector<uint32_t> &masked,
                          uint32_t capacity) {
        uint32_t n = 0;
        for (uint32_t m : masked)
            n += m < capacity ? 1 : 0;
        return n;
    };
    uint32_t masked_pcus = maskedCount(mask_.pcus, P_.numPcus());
    uint32_t masked_pmus = maskedCount(mask_.pmus, P_.numPmus());
    if (pcus_.size() > P_.numPcus() - masked_pcus) {
        failBinding(
            "pcu",
            strfmt("needs %zu PCUs, chip has %u%s", pcus_.size(),
                   P_.numPcus() - masked_pcus,
                   masked_pcus ? strfmt(" (%u masked as faulted)",
                                        masked_pcus)
                                     .c_str()
                               : ""));
        return false;
    }
    if (pmus_.size() > P_.numPmus() - masked_pmus) {
        failBinding(
            "pmu",
            strfmt("needs %zu PMUs, chip has %u%s", pmus_.size(),
                   P_.numPmus() - masked_pmus,
                   masked_pmus ? strfmt(" (%u masked as faulted)",
                                        masked_pmus)
                                     .c_str()
                               : ""));
        return false;
    }
    if (ags_.size() > P_.numAgs) {
        failBinding("ag", strfmt("needs %zu AGs, chip has %u",
                                 ags_.size(), P_.numAgs));
        return false;
    }

    // Adjacency from channels (logical unit pairs).
    auto keyOf = [](const UnitRef &u) {
        return std::make_pair(u.cls, u.index);
    };
    std::map<std::pair<UnitClass, uint16_t>,
             std::vector<std::pair<UnitClass, uint16_t>>>
        adj;
    for (const ChannelCfg &ch : chans_) {
        if (ch.dst.unit.cls == UnitClass::kHost)
            continue;
        adj[keyOf(ch.src.unit)].push_back(keyOf(ch.dst.unit));
        adj[keyOf(ch.dst.unit)].push_back(keyOf(ch.src.unit));
    }

    // Physical assignment maps (logical -> physical index).
    std::vector<int> pcuPhys(pcus_.size(), -1);
    std::vector<int> pmuPhys(pmus_.size(), -1);
    std::vector<int> agPhys(ags_.size(), -1);
    std::vector<int> boxPhys(boxes_.size(), -1);

    // AGs: fixed edge slots in order.
    for (size_t a = 0; a < ags_.size(); ++a) {
        agPhys[a] = static_cast<int>(a);
        ags_[a].channel =
            static_cast<uint8_t>(geom_.agChannel(static_cast<uint32_t>(a)));
    }

    auto placedSwitch =
        [&](const std::pair<UnitClass, uint16_t> &u) -> SwitchCoord {
        switch (u.first) {
          case UnitClass::kPcu:
            if (pcuPhys[u.second] >= 0)
                return geom_.switchOf(UnitClass::kPcu,
                                      pcuPhys[u.second]);
            break;
          case UnitClass::kPmu:
            if (pmuPhys[u.second] >= 0)
                return geom_.switchOf(UnitClass::kPmu,
                                      pmuPhys[u.second]);
            break;
          case UnitClass::kAg:
            return geom_.switchOf(UnitClass::kAg, agPhys[u.second]);
          case UnitClass::kBox:
            if (boxPhys[u.second] >= 0)
                return geom_.switchOf(UnitClass::kBox,
                                      boxPhys[u.second]);
            break;
          default:
            break;
        }
        return {-1, -1};
    };

    // Placement-perturbation state for restart attempts: attempt 0 is
    // noise-free (bit-identical to the legacy greedy placement); later
    // attempts add seeded noise to the site cost, growing with the
    // attempt index so restarts explore progressively farther from the
    // greedy optimum.
    Rng rng(opts_.seed);
    uint64_t noiseMag = 0;

    auto greedyPlace = [&](UnitClass cls, size_t count,
                           std::vector<int> &phys, uint32_t capacity) {
        std::vector<bool> taken(capacity, false);
        // Faulted sites are permanently occupied (degraded re-mapping).
        const std::vector<uint32_t> &masked =
            cls == UnitClass::kPcu ? mask_.pcus : mask_.pmus;
        for (uint32_t m : masked) {
            if (m < capacity)
                taken[m] = true;
        }
        for (size_t u = 0; u < count; ++u) {
            std::pair<UnitClass, uint16_t> key{
                cls, static_cast<uint16_t>(u)};
            int best = -1;
            uint64_t best_cost = ~0ull;
            for (uint32_t site = 0; site < capacity; ++site) {
                if (taken[site])
                    continue;
                SwitchCoord sc = geom_.switchOf(cls, site);
                uint64_t cost = 0;
                for (const auto &nb : adj[key]) {
                    SwitchCoord nc = placedSwitch(nb);
                    if (nc.col >= 0)
                        cost += Geometry::manhattan(sc, nc);
                }
                // Prefer central sites when unconstrained.
                cost = cost * 64 +
                       Geometry::manhattan(
                           sc, {static_cast<int>(P_.gridCols / 2),
                                static_cast<int>(P_.gridRows / 2)});
                if (noiseMag)
                    cost += rng.nextBounded(noiseMag);
                if (cost < best_cost) {
                    best_cost = cost;
                    best = static_cast<int>(site);
                }
            }
            phys[u] = best;
            taken[static_cast<size_t>(best)] = true;
        }
    };

    const int W = static_cast<int>(P_.switchCols());
    const int H = static_cast<int>(P_.switchRows());
    RouterGrid grid;
    grid.cols = W;
    grid.rows = H;
    grid.vectorTracks = P_.vectorTracks;
    grid.scalarTracks = P_.scalarTracks;
    grid.controlTracks = P_.controlTracks;

    // The greedy baseline is one-shot by definition; negotiated mode
    // retries with perturbed placements and a growing round budget.
    const uint32_t attempts = opts_.router == RouterMode::kGreedy
                                  ? 1
                                  : std::max(1u,
                                             opts_.maxPlacementAttempts);

    std::vector<RouterNet> nets;
    RouteOutcome outcome;
    std::string lastFail;
    for (uint32_t attempt = 0; attempt < attempts; ++attempt) {
        rng = Rng(opts_.seed + attempt);
        noiseMag = static_cast<uint64_t>(attempt) * 96;
        std::fill(pcuPhys.begin(), pcuPhys.end(), -1);
        std::fill(pmuPhys.begin(), pmuPhys.end(), -1);
        std::fill(boxPhys.begin(), boxPhys.end(), -1);

        greedyPlace(UnitClass::kPcu, pcus_.size(), pcuPhys,
                    P_.numPcus());
        greedyPlace(UnitClass::kPmu, pmus_.size(), pmuPhys,
                    P_.numPmus());

        // Boxes: nearest free switch to the centroid of their neighbors.
        std::set<int> box_sites;
        for (size_t b = 0; b < boxes_.size(); ++b) {
            std::pair<UnitClass, uint16_t> key{
                UnitClass::kBox, static_cast<uint16_t>(b)};
            int64_t sx = 0, sy = 0, cnt = 0;
            for (const auto &nb : adj[key]) {
                SwitchCoord nc = placedSwitch(nb);
                if (nc.col >= 0) {
                    sx += nc.col;
                    sy += nc.row;
                    ++cnt;
                }
            }
            int cx = cnt ? static_cast<int>(sx / cnt)
                         : static_cast<int>(P_.gridCols / 2);
            int cy = cnt ? static_cast<int>(sy / cnt)
                         : static_cast<int>(P_.gridRows / 2);
            int best = -1;
            int best_d = 1 << 30;
            for (uint32_t r = 0; r < P_.switchRows(); ++r) {
                for (uint32_t c = 0; c < P_.switchCols(); ++c) {
                    int site =
                        static_cast<int>(r * P_.switchCols() + c);
                    if (box_sites.count(site))
                        continue;
                    int d = std::abs(static_cast<int>(c) - cx) +
                            std::abs(static_cast<int>(r) - cy);
                    if (d < best_d) {
                        best_d = d;
                        best = site;
                    }
                }
            }
            boxPhys[b] = best;
            box_sites.insert(best);
        }

        // Router nets from the logical channels. Multicast branches
        // from one source port share routed tracks — a switch forks
        // the bus instead of allocating a second track — so nets get a
        // group id per (source unit, port, network kind).
        std::map<std::tuple<UnitClass, uint16_t, uint8_t, int>,
                 uint32_t>
            groupIds;
        nets.clear();
        nets.reserve(chans_.size());
        for (const ChannelCfg &ch : chans_) {
            RouterNet net;
            net.src = placedSwitch(keyOf(ch.src.unit));
            net.dst = ch.dst.unit.cls == UnitClass::kHost
                          ? SwitchCoord{0, 0}
                          : placedSwitch(keyOf(ch.dst.unit));
            net.kind = ch.kind;
            auto gkey = std::make_tuple(ch.src.unit.cls,
                                        ch.src.unit.index, ch.src.port,
                                        static_cast<int>(ch.kind));
            net.group = groupIds
                            .try_emplace(gkey, static_cast<uint32_t>(
                                                   groupIds.size()))
                            .first->second;
            nets.push_back(net);
        }

        RouterOptions ro;
        ro.mode = opts_.router;
        ro.maxRounds = opts_.maxRouteRounds + attempt * 8;
        ro.seed = opts_.seed;
        outcome = routeNets(nets, grid, ro);

        RouteAttempt ra;
        ra.placement = attempt;
        ra.rounds = outcome.rounds;
        ra.overusedLinks = outcome.overusedLinks;
        ra.routedHops = outcome.totalHops;
        ra.routed = outcome.routed;
        diag_.attempts.push_back(ra);
        diag_.placementAttempts = attempt + 1;

        if (outcome.routed)
            break;
        if (!outcome.hotspots.empty())
            diag_.hotspots = outcome.hotspots;
        if (outcome.failedNet >= 0) {
            lastFail = strfmt(
                "routing failed: %s",
                chans_[static_cast<size_t>(outcome.failedNet)]
                    .describe()
                    .c_str());
        } else {
            lastFail = strfmt("routing failed: %u links over capacity "
                              "after %u rip-up rounds",
                              outcome.overusedLinks, outcome.rounds);
        }
    }

    if (!outcome.routed) {
        failBinding("routing",
                    attempts == 1
                        ? lastFail
                        : strfmt("%s (%u placement attempts)",
                                 lastFail.c_str(), attempts));
        return false;
    }

    // ---- assemble the fabric config -------------------------------
    fab.params = P_;
    fab.pcus.resize(P_.numPcus());
    fab.pmus.resize(P_.numPmus());
    fab.ags.resize(P_.numAgs);
    fab.boxes.resize(P_.switchCols() * P_.switchRows());
    for (size_t u = 0; u < pcus_.size(); ++u)
        fab.pcus[static_cast<size_t>(pcuPhys[u])] = pcus_[u];
    for (size_t u = 0; u < pmus_.size(); ++u)
        fab.pmus[static_cast<size_t>(pmuPhys[u])] = pmus_[u];
    for (size_t u = 0; u < ags_.size(); ++u)
        fab.ags[static_cast<size_t>(agPhys[u])] = ags_[u];
    for (size_t u = 0; u < boxes_.size(); ++u)
        fab.boxes[static_cast<size_t>(boxPhys[u])] = boxes_[u];
    fab.rootBox = boxPhys[static_cast<size_t>(rootBox_)];
    fab.hostArgOuts = hostArgOuts_;
    fab.constants = consts_;

    auto remap = [&](UnitRef &u) {
        switch (u.cls) {
          case UnitClass::kPcu:
            u.index = static_cast<uint16_t>(pcuPhys[u.index]);
            break;
          case UnitClass::kPmu:
            u.index = static_cast<uint16_t>(pmuPhys[u.index]);
            break;
          case UnitClass::kAg:
            u.index = static_cast<uint16_t>(agPhys[u.index]);
            break;
          case UnitClass::kBox:
            u.index = static_cast<uint16_t>(boxPhys[u.index]);
            break;
          case UnitClass::kHost:
            break;
        }
    };
    for (size_t i = 0; i < chans_.size(); ++i) {
        ChannelCfg &ch = chans_[i];
        remap(ch.src.unit);
        if (ch.dst.unit.cls != UnitClass::kHost)
            remap(ch.dst.unit);
        ch.latency = nets[i].hops + 2;
        rep_.routedHops += nets[i].hops;
    }
    fab.channels = chans_;

    diag_.routeRounds = outcome.rounds;
    diag_.routedHops = outcome.totalHops;
    diag_.vectorTrackUtil = outcome.utilization(NetKind::kVector, grid);
    diag_.scalarTrackUtil = outcome.utilization(NetKind::kScalar, grid);
    diag_.controlTrackUtil =
        outcome.utilization(NetKind::kControl, grid);
    return true;
}

// =====================================================================

MapResult
Mapper::run()
{
    MapResult result;
    {
        ScopedSpan span("compile.partition");
        analyze();
    }
    {
        ScopedSpan span("compile.codegen");
        if (ok_)
            createPcus();
        if (ok_)
            createPmus();
        if (ok_)
            createAgs();
        if (ok_)
            createBoxes();
        if (ok_)
            wireScalars();
        if (ok_)
            wireControl();
    }

    FabricConfig fab;
    if (ok_) {
        ScopedSpan span("compile.placeroute");
        ok_ = placeAndRoute(fab);
    }

    rep_.ok = ok_;
    rep_.error = error_;
    diag_.feasible = ok_;
    if (!ok_ && diag_.binding.empty())
        diag_.binding = "compile";
    rep_.diag = diag_;
    rep_.pcusUsed = static_cast<uint32_t>(pcus_.size());
    rep_.pmusUsed = static_cast<uint32_t>(pmus_.size());
    rep_.agsUsed = static_cast<uint32_t>(ags_.size());
    rep_.boxesUsed = static_cast<uint32_t>(boxes_.size());
    rep_.channels = static_cast<uint32_t>(chans_.size());
    for (const PcuCfg &p : pcus_) {
        rep_.stagesUsed += static_cast<uint32_t>(p.stages.size());
        rep_.fuActive +=
            static_cast<uint32_t>(p.stages.size()) * P_.pcu.lanes;
    }
    for (const auto &[node, part] : parts_) {
        for (const auto &ch : part.chunks)
            rep_.regsUsed += ch.metrics.regs;
    }
    for (const PmuCfg &p : pmus_)
        rep_.sramWordsUsed += static_cast<uint64_t>(
                                  p.scratch.numBufs) *
                              p.scratch.sizeWords;

    result.fabric = std::move(fab);
    result.report = rep_;
    result.dramBase = dramBase_;
    return result;
}

} // namespace

MapResult
compileProgram(const Program &prog, const ArchParams &params)
{
    return compileProgram(prog, params, UnitMask{}, CompileOptions{});
}

MapResult
compileProgram(const Program &prog, const ArchParams &params,
               const UnitMask &mask)
{
    return compileProgram(prog, params, mask, CompileOptions{});
}

MapResult
compileProgram(const Program &prog, const ArchParams &params,
               const UnitMask &mask, const CompileOptions &opts)
{
    ScopedSpan compileSpan("compile");

    // Fast structured rejection: total demand vs capacity, before any
    // placement work and with the binding resource named.
    if (opts.runPrecheck) {
        ScopedSpan span("compile.precheck");
        CompileDiagnostics pre = precheckProgram(prog, params, mask);
        if (!pre.feasible) {
            MapResult r;
            r.report.ok = false;
            for (const ResourceCheck &c : pre.checks) {
                if (c.over) {
                    r.report.error = c.describe();
                    break;
                }
            }
            r.report.diag = std::move(pre);
            return r;
        }
    }

    // Capacity-spill loop: when a memory's N-buffer demand exceeds the
    // physical scratchpad, cap the metapipe depths that drive it (the
    // matching throughput throttle) and re-run the partitioner with the
    // caps applied, accumulating until the design fits or nothing
    // shrinks any further.
    constexpr uint32_t kMaxSpillRounds = 8;
    std::map<NodeId, uint32_t> depthCaps;
    std::vector<SpillAction> spills;
    for (uint32_t round = 0;; ++round) {
        Mapper m(prog, params, mask, opts, depthCaps);
        MapResult result = m.run();
        result.report.diag.spills = spills;
        if (result.report.ok || round >= kMaxSpillRounds ||
            m.spillRequests().empty())
            return result;
        bool changed = false;
        for (const auto &[mid, req] : m.spillRequests()) {
            for (NodeId nd : req.nodes) {
                auto it = depthCaps.find(nd);
                uint32_t cur =
                    it == depthCaps.end() ? ~0u : it->second;
                if (req.toBufs >= cur)
                    continue;
                depthCaps[nd] = req.toBufs;
                changed = true;
                SpillAction act;
                act.memory = prog.mems[mid].name;
                act.node = prog.nodes[nd].name;
                act.fromBufs = req.fromBufs;
                act.toBufs = req.toBufs;
                spills.push_back(act);
            }
        }
        if (!changed)
            return result;
    }
}

std::string
MappingReport::summary(const ArchParams &params) const
{
    return strfmt(
        "map: %u/%u PCUs (%.1f%%), %u/%u PMUs (%.1f%%), %u/%u AGs "
        "(%.1f%%), %u boxes, %u channels, %llu hops",
        pcusUsed, params.numPcus(),
        100.0 * pcusUsed / params.numPcus(), pmusUsed, params.numPmus(),
        100.0 * pmusUsed / params.numPmus(), agsUsed, params.numAgs,
        100.0 * agsUsed / params.numAgs, boxesUsed, channels,
        static_cast<unsigned long long>(routedHops));
}

} // namespace plast::compiler
