#include "compiler/router.hpp"

#include <algorithm>
#include <map>
#include <queue>
#include <set>
#include <tuple>

namespace plast::compiler
{

namespace
{

// Neighbor order matches the legacy BFS exactly: E, W, S, N.
const int kDc[4] = {1, -1, 0, 0};
const int kDr[4] = {0, 0, 1, -1};

// Negotiated-congestion cost weights. Base is the per-hop cost; history
// accumulates on links that stay oversubscribed across rounds; the
// present-congestion factor escalates linearly with the round number so
// early rounds explore short paths and later rounds force detours.
constexpr uint32_t kBaseCost = 16;
constexpr uint32_t kHistCost = 8;

int
kindIdx(NetKind k)
{
    return static_cast<int>(k);
}

/**
 * The legacy router: per-net BFS in order over capacity-free links,
 * claiming tracks as it goes, with multicast groups riding already
 * claimed links for free. Kept bit-for-bit compatible with the
 * original mapper so it remains a trustworthy QoR baseline.
 */
RouteOutcome
routeGreedy(std::vector<RouterNet> &nets, const RouterGrid &grid)
{
    RouteOutcome out;
    const int W = grid.cols;
    const int H = grid.rows;

    std::map<std::tuple<int, int, int, int, int>, uint32_t> usage;
    std::map<uint32_t, std::set<std::tuple<int, int, int, int>>>
        groupLinks;

    for (size_t n = 0; n < nets.size(); ++n) {
        RouterNet &net = nets[n];
        auto &shared = groupLinks[net.group];
        const SwitchCoord s = net.src;
        const SwitchCoord d = net.dst;

        std::vector<int> prev(static_cast<size_t>(W * H), -2);
        std::vector<int> queue;
        auto idx = [&](int c, int r) { return r * W + c; };
        queue.push_back(idx(s.col, s.row));
        prev[static_cast<size_t>(queue[0])] = -1;
        bool found = (s == d);
        for (size_t qi = 0; qi < queue.size() && !found; ++qi) {
            int cur = queue[qi];
            int cc = cur % W, cr = cur / W;
            for (int dir = 0; dir < 4; ++dir) {
                int nc = cc + kDc[dir], nr = cr + kDr[dir];
                if (nc < 0 || nc >= W || nr < 0 || nr >= H)
                    continue;
                int nxt = idx(nc, nr);
                if (prev[static_cast<size_t>(nxt)] != -2)
                    continue;
                auto link = std::make_tuple(cc, cr, nc, nr);
                auto key = std::make_tuple(cc, cr, nc, nr,
                                           static_cast<int>(net.kind));
                if (!shared.count(link) &&
                    usage[key] >= grid.trackCap(net.kind))
                    continue;
                prev[static_cast<size_t>(nxt)] = cur;
                if (nc == d.col && nr == d.row) {
                    found = true;
                    break;
                }
                queue.push_back(nxt);
            }
        }
        if (!found) {
            out.routed = false;
            out.failedNet = static_cast<int>(n);
            out.rounds = 1;
            for (const auto &[key, u] : usage)
                out.linkLoad[std::get<4>(key)] += u;
            return out;
        }
        // Walk back, claiming tracks (shared links are free).
        uint32_t hops = 0;
        int cur = idx(d.col, d.row);
        while (prev[static_cast<size_t>(cur)] >= 0) {
            int pr = prev[static_cast<size_t>(cur)];
            auto link =
                std::make_tuple(pr % W, pr / W, cur % W, cur / W);
            if (!shared.count(link)) {
                usage[std::make_tuple(pr % W, pr / W, cur % W, cur / W,
                                      static_cast<int>(net.kind))]++;
                shared.insert(link);
            }
            cur = pr;
            ++hops;
        }
        net.hops = hops;
        out.totalHops += hops;
    }
    out.routed = true;
    out.rounds = 1;
    for (const auto &[key, u] : usage)
        out.linkLoad[std::get<4>(key)] += u;
    return out;
}

/** One multicast group: a source and its terminals in net order. */
struct Group
{
    NetKind kind = NetKind::kVector;
    SwitchCoord src;
    std::vector<size_t> nets;
};

RouteOutcome
routeNegotiated(std::vector<RouterNet> &nets, const RouterGrid &grid,
                const RouterOptions &opts)
{
    RouteOutcome out;
    const int W = grid.cols;
    const int H = grid.rows;
    const size_t numNodes = static_cast<size_t>(W * H);
    const size_t numLinks = numNodes * 4;

    // Group nets into multicast trees, preserving first-seen order.
    std::vector<Group> groups;
    std::map<uint32_t, size_t> groupOf;
    for (size_t n = 0; n < nets.size(); ++n) {
        auto [it, fresh] = groupOf.try_emplace(nets[n].group,
                                               groups.size());
        if (fresh) {
            groups.push_back({nets[n].kind, nets[n].src, {}});
        }
        groups[it->second].nets.push_back(n);
    }

    // Per-kind present usage and cross-round history, indexed by
    // directed link id (node * 4 + direction).
    std::vector<uint32_t> usage[3], hist[3];
    for (int k = 0; k < 3; ++k) {
        usage[k].assign(numLinks, 0);
        hist[k].assign(numLinks, 0);
    }

    auto nodeOf = [&](const SwitchCoord &c) {
        return static_cast<size_t>(c.row * W + c.col);
    };

    // Dijkstra scratch, reused across terminals.
    constexpr uint64_t kInf = ~0ull;
    std::vector<uint64_t> dist(numNodes);
    std::vector<uint32_t> hopCnt(numNodes);
    std::vector<int32_t> prevLink(numNodes);
    std::vector<int32_t> depth(numNodes);
    std::vector<uint8_t> claimed(numLinks);

    const uint32_t maxRounds = std::max(1u, opts.maxRounds);
    for (uint32_t round = 1; round <= maxRounds; ++round) {
        for (int k = 0; k < 3; ++k)
            std::fill(usage[k].begin(), usage[k].end(), 0u);
        const uint64_t presFac = static_cast<uint64_t>(kBaseCost) * round;
        out.totalHops = 0;

        for (const Group &g : groups) {
            const int k = kindIdx(g.kind);
            const uint32_t cap = grid.trackCap(g.kind);
            std::fill(depth.begin(), depth.end(), -1);
            std::fill(claimed.begin(), claimed.end(),
                      static_cast<uint8_t>(0));
            depth[nodeOf(g.src)] = 0;

            for (size_t n : g.nets) {
                RouterNet &net = nets[n];
                size_t dstNode = nodeOf(net.dst);
                if (depth[dstNode] >= 0) {
                    // Terminal already on the tree (same-switch fanout).
                    net.hops = static_cast<uint32_t>(depth[dstNode]);
                    out.totalHops += net.hops;
                    continue;
                }

                // Dijkstra from the whole tree: seeding each tree node
                // at cost depth*base makes a terminal's final cost its
                // hop count from the source, so uncongested routes are
                // source-shortest — never longer than the greedy BFS.
                std::fill(dist.begin(), dist.end(), kInf);
                std::fill(prevLink.begin(), prevLink.end(), -1);
                using QE = std::pair<uint64_t, size_t>; // (cost, node)
                std::priority_queue<QE, std::vector<QE>,
                                    std::greater<QE>>
                    pq;
                for (size_t v = 0; v < numNodes; ++v) {
                    if (depth[v] >= 0) {
                        dist[v] = static_cast<uint64_t>(depth[v]) *
                                  kBaseCost;
                        hopCnt[v] = static_cast<uint32_t>(depth[v]);
                        pq.push({dist[v], v});
                    }
                }
                while (!pq.empty()) {
                    auto [cost, v] = pq.top();
                    pq.pop();
                    if (cost != dist[v])
                        continue;
                    if (v == dstNode)
                        break;
                    int vc = static_cast<int>(v) % W;
                    int vr = static_cast<int>(v) / W;
                    for (int dir = 0; dir < 4; ++dir) {
                        int nc = vc + kDc[dir], nr = vr + kDr[dir];
                        if (nc < 0 || nc >= W || nr < 0 || nr >= H)
                            continue;
                        size_t nb = static_cast<size_t>(nr * W + nc);
                        size_t link = v * 4 + static_cast<size_t>(dir);
                        uint64_t c;
                        if (claimed[link]) {
                            // Already part of this group's tree: the
                            // track is paid for, only the hop counts.
                            c = kBaseCost;
                        } else {
                            uint32_t u = usage[k][link];
                            uint32_t over = u + 1 > cap ? u + 1 - cap : 0;
                            c = kBaseCost +
                                static_cast<uint64_t>(kHistCost) *
                                    hist[k][link] +
                                presFac * over;
                        }
                        if (cost + c < dist[nb]) {
                            dist[nb] = cost + c;
                            hopCnt[nb] = hopCnt[v] + 1;
                            prevLink[nb] = static_cast<int32_t>(link);
                            pq.push({dist[nb], nb});
                        }
                    }
                }

                // Claim the new path back to the tree.
                size_t v = dstNode;
                while (depth[v] < 0) {
                    depth[v] = static_cast<int32_t>(hopCnt[v]);
                    size_t link = static_cast<size_t>(prevLink[v]);
                    if (!claimed[link]) {
                        claimed[link] = 1;
                        usage[k][link]++;
                    }
                    v = link / 4;
                }
                net.hops = static_cast<uint32_t>(depth[dstNode]);
                out.totalHops += net.hops;
            }
        }

        // Convergence check: any link over capacity?
        uint32_t overused = 0;
        for (int k = 0; k < 3; ++k) {
            const uint32_t cap =
                grid.trackCap(static_cast<NetKind>(k));
            for (size_t l = 0; l < numLinks; ++l) {
                if (usage[k][l] > cap)
                    ++overused;
            }
        }
        out.rounds = round;
        if (overused == 0) {
            out.routed = true;
            out.overusedLinks = 0;
            for (int k = 0; k < 3; ++k)
                for (size_t l = 0; l < numLinks; ++l)
                    out.linkLoad[k] += usage[k][l];
            return out;
        }
        out.overusedLinks = overused;
        for (int k = 0; k < 3; ++k) {
            const uint32_t cap =
                grid.trackCap(static_cast<NetKind>(k));
            for (size_t l = 0; l < numLinks; ++l) {
                if (usage[k][l] > cap)
                    hist[k][l] += usage[k][l] - cap;
            }
        }
    }

    // Round budget exhausted: report the surviving hotspots.
    out.routed = false;
    struct Hot
    {
        uint32_t over;
        int k;
        size_t link;
    };
    std::vector<Hot> hots;
    for (int k = 0; k < 3; ++k) {
        const uint32_t cap = grid.trackCap(static_cast<NetKind>(k));
        for (size_t l = 0; l < numLinks; ++l) {
            out.linkLoad[k] += usage[k][l];
            if (usage[k][l] > cap)
                hots.push_back({usage[k][l] - cap, k, l});
        }
    }
    std::stable_sort(hots.begin(), hots.end(),
                     [](const Hot &a, const Hot &b) {
                         return a.over > b.over;
                     });
    if (hots.size() > 8)
        hots.resize(8);
    for (const Hot &h : hots) {
        CongestionHotspot spot;
        size_t node = h.link / 4;
        int dir = static_cast<int>(h.link % 4);
        spot.fromCol = static_cast<int>(node) % W;
        spot.fromRow = static_cast<int>(node) / W;
        spot.toCol = spot.fromCol + kDc[dir];
        spot.toRow = spot.fromRow + kDr[dir];
        spot.kind = static_cast<NetKind>(h.k);
        spot.capacity = grid.trackCap(spot.kind);
        spot.demand = spot.capacity + h.over;
        out.hotspots.push_back(spot);
    }
    return out;
}

} // namespace

RouteOutcome
routeNets(std::vector<RouterNet> &nets, const RouterGrid &grid,
          const RouterOptions &opts)
{
    if (opts.mode == RouterMode::kGreedy)
        return routeGreedy(nets, grid);
    return routeNegotiated(nets, grid, opts);
}

} // namespace plast::compiler
