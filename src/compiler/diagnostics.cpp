#include "compiler/diagnostics.hpp"

#include <ostream>

#include "base/logging.hpp"

namespace plast::compiler
{

namespace
{

const char *
kindName(NetKind k)
{
    switch (k) {
      case NetKind::kScalar: return "scalar";
      case NetKind::kVector: return "vector";
      case NetKind::kControl: return "control";
    }
    return "?";
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strfmt("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

} // namespace

std::string
ResourceCheck::describe() const
{
    std::string s = strfmt("%s: %llu needed, %llu available%s",
                           resource.c_str(),
                           static_cast<unsigned long long>(demand),
                           static_cast<unsigned long long>(capacity),
                           over ? " [OVER]" : "");
    if (!detail.empty())
        s += " (" + detail + ")";
    return s;
}

std::string
CongestionHotspot::describe() const
{
    return strfmt("%s link (%d,%d)->(%d,%d): %u nets on %u tracks",
                  kindName(kind), fromCol, fromRow, toCol, toRow, demand,
                  capacity);
}

std::string
SpillAction::describe() const
{
    return strfmt("memory '%s': N-buffer depth %u -> %u (metapipe '%s' "
                  "throttled to match)",
                  memory.c_str(), fromBufs, toBufs, node.c_str());
}

std::string
CompileDiagnostics::summary() const
{
    std::string s =
        feasible
            ? strfmt("compile ok: %u placement attempt(s), %u routing "
                     "round(s), %llu routed hops",
                     placementAttempts, routeRounds,
                     static_cast<unsigned long long>(routedHops))
            : strfmt("compile infeasible: binding resource '%s'",
                     binding.c_str());
    s += strfmt("\n  track utilization: vector %.1f%%, scalar %.1f%%, "
                "control %.1f%%",
                100.0 * vectorTrackUtil, 100.0 * scalarTrackUtil,
                100.0 * controlTrackUtil);
    for (const ResourceCheck &c : checks) {
        if (c.over || !feasible)
            s += "\n  check " + c.describe();
    }
    for (const RouteAttempt &a : attempts) {
        s += strfmt("\n  attempt %u: %s after %u round(s), %u overused "
                    "link(s), %llu hops",
                    a.placement, a.routed ? "routed" : "congested",
                    a.rounds, a.overusedLinks,
                    static_cast<unsigned long long>(a.routedHops));
    }
    for (const CongestionHotspot &h : hotspots)
        s += "\n  hotspot " + h.describe();
    for (const SpillAction &sp : spills)
        s += "\n  spill " + sp.describe();
    return s;
}

void
CompileDiagnostics::dumpJson(std::ostream &os) const
{
    os << "{\n";
    os << "  \"feasible\": " << (feasible ? "true" : "false") << ",\n";
    os << "  \"binding\": \"" << jsonEscape(binding) << "\",\n";
    os << "  \"placementAttempts\": " << placementAttempts << ",\n";
    os << "  \"routeRounds\": " << routeRounds << ",\n";
    os << "  \"routedHops\": " << routedHops << ",\n";
    os << strfmt("  \"vectorTrackUtil\": %.6f,\n", vectorTrackUtil);
    os << strfmt("  \"scalarTrackUtil\": %.6f,\n", scalarTrackUtil);
    os << strfmt("  \"controlTrackUtil\": %.6f,\n", controlTrackUtil);
    os << "  \"checks\": [";
    for (size_t i = 0; i < checks.size(); ++i) {
        const ResourceCheck &c = checks[i];
        os << (i ? ",\n    " : "\n    ");
        os << "{\"resource\": \"" << jsonEscape(c.resource)
           << "\", \"demand\": " << c.demand
           << ", \"capacity\": " << c.capacity
           << ", \"over\": " << (c.over ? "true" : "false")
           << ", \"detail\": \"" << jsonEscape(c.detail) << "\"}";
    }
    os << (checks.empty() ? "],\n" : "\n  ],\n");
    os << "  \"attempts\": [";
    for (size_t i = 0; i < attempts.size(); ++i) {
        const RouteAttempt &a = attempts[i];
        os << (i ? ",\n    " : "\n    ");
        os << "{\"placement\": " << a.placement
           << ", \"rounds\": " << a.rounds
           << ", \"overusedLinks\": " << a.overusedLinks
           << ", \"routedHops\": " << a.routedHops
           << ", \"routed\": " << (a.routed ? "true" : "false") << "}";
    }
    os << (attempts.empty() ? "],\n" : "\n  ],\n");
    os << "  \"hotspots\": [";
    for (size_t i = 0; i < hotspots.size(); ++i) {
        const CongestionHotspot &h = hotspots[i];
        os << (i ? ",\n    " : "\n    ");
        os << "{\"from\": [" << h.fromCol << ", " << h.fromRow
           << "], \"to\": [" << h.toCol << ", " << h.toRow
           << "], \"kind\": \"" << kindName(h.kind)
           << "\", \"demand\": " << h.demand
           << ", \"capacity\": " << h.capacity << "}";
    }
    os << (hotspots.empty() ? "],\n" : "\n  ],\n");
    os << "  \"spills\": [";
    for (size_t i = 0; i < spills.size(); ++i) {
        const SpillAction &sp = spills[i];
        os << (i ? ",\n    " : "\n    ");
        os << "{\"memory\": \"" << jsonEscape(sp.memory)
           << "\", \"node\": \"" << jsonEscape(sp.node)
           << "\", \"fromBufs\": " << sp.fromBufs
           << ", \"toBufs\": " << sp.toBufs << "}";
    }
    os << (spills.empty() ? "]\n" : "\n  ]\n");
    os << "}\n";
}

} // namespace plast::compiler
