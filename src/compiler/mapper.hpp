/**
 * @file
 * The compiler driver (§3.6): lowers a PIR program onto the Plasticine
 * fabric. Pipeline:
 *
 *   1. lower every compute leaf to a virtual PCU   (vleaf)
 *   2. partition virtual units into physical PCUs  (partition)
 *   3. plan memories: one PMU per (memory, reader), N-buffering and
 *      swap/clear cadence from the controller hierarchy
 *   4. generate unit configurations, data channels and the token /
 *      credit control graph (control boxes in switches, §3.5)
 *   5. place units on the 16x8 grid and route every channel over the
 *      switch network with per-link track capacities; routed hop counts
 *      become channel latencies
 *
 * The result is a FabricConfig — the static "bitstream" the simulator
 * executes — plus a MappingReport with the utilization statistics the
 * evaluation section reports (Table 7, Figure 7).
 */

#ifndef PLAST_COMPILER_MAPPER_HPP
#define PLAST_COMPILER_MAPPER_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "arch/config.hpp"
#include "arch/params.hpp"
#include "compiler/diagnostics.hpp"
#include "compiler/partition.hpp"
#include "compiler/router.hpp"
#include "pir/ir.hpp"

namespace plast::compiler
{

/**
 * Physical units the placer must avoid — the degraded-mode re-mapping
 * input. After a hard fault is localized, recovery recompiles the
 * program with the faulted sites masked; placement treats them as
 * permanently occupied and capacity checks shrink accordingly.
 */
struct UnitMask
{
    std::vector<uint32_t> pcus; ///< physical PCU indices to avoid
    std::vector<uint32_t> pmus; ///< physical PMU indices to avoid

    bool empty() const { return pcus.empty() && pmus.empty(); }
};

/**
 * Compile-pipeline knobs. The defaults give the robust pipeline —
 * negotiated-congestion routing, seeded placement restarts and
 * capacity spilling; kGreedy restores the legacy one-shot BFS (single
 * placement, no retries) as a QoR / regression baseline.
 */
struct CompileOptions
{
    RouterMode router = RouterMode::kNegotiated;
    /** Rip-up-and-reroute round budget per placement attempt; later
     *  attempts get a larger budget (cost backoff). */
    uint32_t maxRouteRounds = 24;
    /** Placement attempts: 0 is the deterministic greedy placement,
     *  later ones perturb site costs with seeded noise. */
    uint32_t maxPlacementAttempts = 4;
    /** Shrink N-buffer depths (with the matching metapipe throttle)
     *  when a memory exceeds the physical scratchpad. */
    bool allowSpill = true;
    /** Perturbation seed: same seed -> identical placement + routes. */
    uint64_t seed = 0;
    /** Skip the feasibility pre-check (used by harnesses that want to
     *  cross-validate the pre-check against the full pipeline). */
    bool runPrecheck = true;
};

struct MappingReport
{
    bool ok = false;
    std::string error;

    /** Structured compile diagnostics: feasibility checks, placement /
     *  routing attempts, congestion hotspots, spill actions. */
    CompileDiagnostics diag;

    uint32_t pcusUsed = 0;
    uint32_t pmusUsed = 0;
    uint32_t agsUsed = 0;
    uint32_t boxesUsed = 0;
    uint32_t channels = 0;
    uint64_t routedHops = 0;

    /** Aggregate chunk metrics (Figure 7 cost-model inputs). */
    uint32_t stagesUsed = 0;     ///< sum over PCUs of configured stages
    uint32_t regsUsed = 0;       ///< sum of peak live registers
    uint64_t sramWordsUsed = 0;  ///< logical words incl. N-buffering
    uint32_t fuActive = 0;       ///< stages x lanes over used PCUs

    std::string summary(const ArchParams &params) const;
};

struct MapResult
{
    FabricConfig fabric;
    MappingReport report;
    /** Byte base of each DRAM buffer in the accelerator address space
     *  (indexed by pir MemId; zero for SRAM entries). */
    std::vector<Addr> dramBase;
};

/**
 * Compile a program (arguments already bound) for the given
 * architecture. Malformed programs and capacity overruns are reported
 * via report.ok/error (with structured report.diag) so design-space
 * sweeps, fuzzers and recovery can observe infeasible points; nothing
 * reachable from user-supplied PIR is fatal.
 */
MapResult compileProgram(const pir::Program &prog,
                         const ArchParams &params);

/** Compile with faulted physical units masked out of placement
 *  (graceful degradation after a hard fault). */
MapResult compileProgram(const pir::Program &prog,
                         const ArchParams &params, const UnitMask &mask);

/** Compile with explicit pipeline options (router mode, restart /
 *  spill budgets, perturbation seed). */
MapResult compileProgram(const pir::Program &prog,
                         const ArchParams &params, const UnitMask &mask,
                         const CompileOptions &opts);

} // namespace plast::compiler

#endif // PLAST_COMPILER_MAPPER_HPP
