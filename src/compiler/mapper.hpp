/**
 * @file
 * The compiler driver (§3.6): lowers a PIR program onto the Plasticine
 * fabric. Pipeline:
 *
 *   1. lower every compute leaf to a virtual PCU   (vleaf)
 *   2. partition virtual units into physical PCUs  (partition)
 *   3. plan memories: one PMU per (memory, reader), N-buffering and
 *      swap/clear cadence from the controller hierarchy
 *   4. generate unit configurations, data channels and the token /
 *      credit control graph (control boxes in switches, §3.5)
 *   5. place units on the 16x8 grid and route every channel over the
 *      switch network with per-link track capacities; routed hop counts
 *      become channel latencies
 *
 * The result is a FabricConfig — the static "bitstream" the simulator
 * executes — plus a MappingReport with the utilization statistics the
 * evaluation section reports (Table 7, Figure 7).
 */

#ifndef PLAST_COMPILER_MAPPER_HPP
#define PLAST_COMPILER_MAPPER_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "arch/config.hpp"
#include "arch/params.hpp"
#include "compiler/partition.hpp"
#include "pir/ir.hpp"

namespace plast::compiler
{

/**
 * Physical units the placer must avoid — the degraded-mode re-mapping
 * input. After a hard fault is localized, recovery recompiles the
 * program with the faulted sites masked; placement treats them as
 * permanently occupied and capacity checks shrink accordingly.
 */
struct UnitMask
{
    std::vector<uint32_t> pcus; ///< physical PCU indices to avoid
    std::vector<uint32_t> pmus; ///< physical PMU indices to avoid

    bool empty() const { return pcus.empty() && pmus.empty(); }
};

struct MappingReport
{
    bool ok = false;
    std::string error;

    uint32_t pcusUsed = 0;
    uint32_t pmusUsed = 0;
    uint32_t agsUsed = 0;
    uint32_t boxesUsed = 0;
    uint32_t channels = 0;
    uint64_t routedHops = 0;

    /** Aggregate chunk metrics (Figure 7 cost-model inputs). */
    uint32_t stagesUsed = 0;     ///< sum over PCUs of configured stages
    uint32_t regsUsed = 0;       ///< sum of peak live registers
    uint64_t sramWordsUsed = 0;  ///< logical words incl. N-buffering
    uint32_t fuActive = 0;       ///< stages x lanes over used PCUs

    std::string summary(const ArchParams &params) const;
};

struct MapResult
{
    FabricConfig fabric;
    MappingReport report;
    /** Byte base of each DRAM buffer in the accelerator address space
     *  (indexed by pir MemId; zero for SRAM entries). */
    std::vector<Addr> dramBase;
};

/**
 * Compile a program (arguments already bound) for the given
 * architecture. Fatals on malformed programs; capacity overruns are
 * reported via report.ok/error so design-space sweeps can observe
 * infeasible points.
 */
MapResult compileProgram(const pir::Program &prog,
                         const ArchParams &params);

/** Compile with faulted physical units masked out of placement
 *  (graceful degradation after a hard fault). */
MapResult compileProgram(const pir::Program &prog,
                         const ArchParams &params, const UnitMask &mask);

} // namespace plast::compiler

#endif // PLAST_COMPILER_MAPPER_HPP
