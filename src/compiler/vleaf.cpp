#include "compiler/vleaf.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

#include "base/logging.hpp"
#include "base/rng.hpp"
#include "sim/fuexec.hpp"

namespace plast::compiler
{

using namespace pir;

std::string
accessClassName(AccessClass c)
{
    switch (c) {
      case AccessClass::kVecLinear: return "vec-linear";
      case AccessClass::kBroadcast: return "broadcast";
      case AccessClass::kGather: return "gather";
    }
    return "?";
}

namespace
{

/** Does the expression transitively read memory or streams? */
bool
reachesData(const Program &prog, ExprId id)
{
    const Expr &e = prog.exprs[id];
    switch (e.kind) {
      case ExprKind::kLoadSram:
      case ExprKind::kStreamIn:
        return true;
      case ExprKind::kAlu:
        return (e.a != kNone && reachesData(prog, e.a)) ||
               (e.b != kNone && reachesData(prog, e.b)) ||
               (e.c != kNone && reachesData(prog, e.c));
      default:
        return false;
    }
}

/** Probe-evaluate a data-free expression at a given lane. */
int64_t
probeEval(const Program &prog, const Node &leaf, ExprId id,
          const std::map<CtrId, int64_t> &env, uint32_t lane)
{
    const Expr &e = prog.exprs[id];
    switch (e.kind) {
      case ExprKind::kConst:
        return wordToInt(e.cval);
      case ExprKind::kArg:
        return wordToInt(prog.args[e.arg].value);
      case ExprKind::kCtr: {
        int64_t v = env.at(e.ctr);
        const CtrDecl &cd = prog.ctrs[e.ctr];
        // Vectorized leaf counter: lane offset applies.
        bool is_leaf_vec = cd.vectorized &&
                           std::find(leaf.leafCtrs.begin(),
                                     leaf.leafCtrs.end(),
                                     e.ctr) != leaf.leafCtrs.end();
        return is_leaf_vec ? v + static_cast<int64_t>(lane) * cd.step : v;
      }
      case ExprKind::kLaneId:
        return lane;
      case ExprKind::kScalarIn:
        return 7; // opaque but lane-invariant
      case ExprKind::kAlu: {
        Word a = e.a != kNone ? intToWord(static_cast<int32_t>(
                                    probeEval(prog, leaf, e.a, env, lane)))
                              : 0;
        Word b = e.b != kNone ? intToWord(static_cast<int32_t>(
                                    probeEval(prog, leaf, e.b, env, lane)))
                              : 0;
        Word c = e.c != kNone ? intToWord(static_cast<int32_t>(
                                    probeEval(prog, leaf, e.c, env, lane)))
                              : 0;
        return wordToInt(fuExec(e.alu, a, b, c));
      }
      default:
        panic("probeEval: unexpected expr kind");
    }
}

} // namespace

AccessClass
classifyAddr(const Program &prog, const Node &leaf, ExprId addr)
{
    if (reachesData(prog, addr))
        return AccessClass::kGather;

    Rng rng(0xabcdef1234ull);
    bool linear = true, invariant = true;
    for (int trial = 0; trial < 6; ++trial) {
        std::map<CtrId, int64_t> env;
        for (size_t c = 0; c < prog.ctrs.size(); ++c) {
            env[static_cast<CtrId>(c)] =
                prog.ctrs[c].min +
                prog.ctrs[c].step *
                    static_cast<int64_t>(rng.nextBounded(7));
        }
        int64_t v0 = probeEval(prog, leaf, addr, env, 0);
        for (uint32_t lane : {1u, 2u, 5u}) {
            int64_t vl = probeEval(prog, leaf, addr, env, lane);
            if (vl - v0 != static_cast<int64_t>(lane))
                linear = false;
            if (vl != v0)
                invariant = false;
        }
    }
    if (linear)
        return AccessClass::kVecLinear;
    if (invariant)
        return AccessClass::kBroadcast;
    return AccessClass::kGather;
}

namespace
{

/** Builder state while lowering one leaf. */
struct LowerCtx
{
    const Program &prog;
    const Node &leaf;
    NodeId leafId;
    uint32_t lanes;
    VirtualLeaf out;
    std::map<ExprId, int32_t> memo;

    int32_t
    value(VValue v)
    {
        out.values.push_back(v);
        return static_cast<int32_t>(out.values.size() - 1);
    }

    int32_t
    appendOp(VOp op)
    {
        out.ops.push_back(op);
        int32_t opIdx = static_cast<int32_t>(out.ops.size() - 1);
        VValue v;
        v.kind = VValue::Kind::kOp;
        v.def = opIdx;
        int32_t vid = value(v);
        out.ops[opIdx].result = vid;
        return vid;
    }

    int32_t
    scalSource(const ScalSource &s)
    {
        for (size_t i = 0; i < out.scalSources.size(); ++i) {
            const ScalSource &o = out.scalSources[i];
            if (o.kind == s.kind && o.ctr == s.ctr &&
                o.scalarIn == s.scalarIn &&
                o.boundCtrLevel == s.boundCtrLevel)
                return static_cast<int32_t>(i);
        }
        out.scalSources.push_back(s);
        return static_cast<int32_t>(out.scalSources.size() - 1);
    }

    int leafCtrLevel(CtrId c) const
    {
        for (size_t i = 0; i < leaf.leafCtrs.size(); ++i) {
            if (leaf.leafCtrs[i] == c)
                return static_cast<int>(i);
        }
        return -1;
    }

    int32_t visit(ExprId id);

    /** Ensure the value is produced by an op (so it has a register). */
    int32_t
    materialize(int32_t vid)
    {
        if (out.values[vid].kind == VValue::Kind::kOp)
            return vid;
        VOp op;
        op.kind = StageKind::kMap;
        op.op = FuOp::kNop;
        op.a = vid;
        return appendOp(op);
    }
};

int32_t
LowerCtx::visit(ExprId id)
{
    auto it = memo.find(id);
    if (it != memo.end())
        return it->second;

    const Expr &e = prog.exprs[id];
    int32_t vid = -1;
    switch (e.kind) {
      case ExprKind::kConst: {
        VValue v;
        v.kind = VValue::Kind::kImm;
        v.imm = e.cval;
        vid = value(v);
        break;
      }
      case ExprKind::kArg: {
        VValue v;
        v.kind = VValue::Kind::kImm;
        v.imm = prog.args[e.arg].value;
        vid = value(v);
        break;
      }
      case ExprKind::kLaneId: {
        VValue v;
        v.kind = VValue::Kind::kLane;
        vid = value(v);
        break;
      }
      case ExprKind::kCtr: {
        int level = leafCtrLevel(e.ctr);
        if (level >= 0) {
            VValue v;
            v.kind = VValue::Kind::kCtr;
            v.index = level;
            vid = value(v);
        } else {
            ScalSource s;
            s.kind = ScalSource::Kind::kOuterCtr;
            s.ctr = e.ctr;
            VValue v;
            v.kind = VValue::Kind::kScalar;
            v.index = scalSource(s);
            vid = value(v);
        }
        break;
      }
      case ExprKind::kScalarIn: {
        ScalSource s;
        s.kind = ScalSource::Kind::kLeafScalar;
        s.scalarIn = e.scalar;
        VValue v;
        v.kind = VValue::Kind::kScalar;
        v.index = scalSource(s);
        vid = value(v);
        break;
      }
      case ExprKind::kStreamIn: {
        VecSource src;
        src.kind = VecSource::Kind::kDramStream;
        src.expr = id;
        src.access = AccessClass::kVecLinear;
        out.vecSources.push_back(src);
        VValue v;
        v.kind = VValue::Kind::kVecIn;
        v.index = static_cast<int32_t>(out.vecSources.size() - 1);
        vid = value(v);
        break;
      }
      case ExprKind::kLoadSram: {
        AccessClass cls = classifyAddr(prog, leaf, e.addr);
        VecSource src;
        src.expr = id;
        src.access = cls;
        if (cls == AccessClass::kGather) {
            src.kind = VecSource::Kind::kGatherData;
            int32_t addr_v = materialize(visit(e.addr));
            src.addrValue = addr_v;
            // The address round-trips through the PMU: everything that
            // consumes the gathered data must sit in a later PCU.
            out.ops[out.values[addr_v].def].barrierAfter = true;
            VEmission em;
            em.kind = VEmission::Kind::kVecOut;
            em.value = addr_v;
            em.cond = EmitCond::everyWavefront();
            em.gatherVecSource =
                static_cast<int32_t>(out.vecSources.size());
            out.emissions.push_back(em);
        } else {
            src.kind = VecSource::Kind::kSramLoad;
        }
        out.vecSources.push_back(src);
        VValue v;
        v.kind = VValue::Kind::kVecIn;
        v.index = static_cast<int32_t>(out.vecSources.size() - 1);
        vid = value(v);
        break;
      }
      case ExprKind::kAlu: {
        int32_t a = e.a != kNone ? visit(e.a) : -1;
        int32_t b = e.b != kNone ? visit(e.b) : -1;
        int32_t c = e.c != kNone ? visit(e.c) : -1;
        VOp op;
        op.kind = StageKind::kMap;
        op.op = e.alu;
        op.a = a;
        op.b = b;
        op.c = c;
        vid = appendOp(op);
        break;
      }
    }
    memo[id] = vid;
    return vid;
}

} // namespace

VirtualLeaf
lowerLeaf(const Program &prog, NodeId leafId, uint32_t lanes)
{
    const Node &leaf = prog.nodes[leafId];
    panic_if(leaf.kind != NodeKind::kCompute, "lowerLeaf on non-compute");

    LowerCtx ctx{prog, leaf, leafId, lanes, {}, {}};
    ctx.out.node = leafId;
    ctx.out.name = leaf.name;

    // Counter chain with resolved static bounds; dynamic bounds become
    // scalar sources.
    for (size_t lvl = 0; lvl < leaf.leafCtrs.size(); ++lvl) {
        CtrId cid = leaf.leafCtrs[lvl];
        const CtrDecl &cd = prog.ctrs[cid];
        CounterCfg cc;
        cc.min = cd.min;
        cc.step = cd.step;
        cc.vectorized = cd.vectorized;
        int8_t dyn = -1;
        if (cd.boundArg != kNone) {
            cc.max = wordToInt(prog.args[cd.boundArg].value);
        } else if (cd.boundSinkNode != kNone) {
            ScalSource s;
            s.kind = ScalSource::Kind::kDynBound;
            s.boundCtrLevel = static_cast<int32_t>(lvl);
            s.ctr = cid;
            dyn = static_cast<int8_t>(ctx.scalSource(s));
            cc.max = 0; // resolved at run time
        } else {
            cc.max = cd.max;
        }
        ctx.out.chain.ctrs.push_back(cc);
        ctx.out.ctrIds.push_back(cid);
        ctx.out.dynBoundScalar.push_back(dyn);
    }

    // Lower each sink.
    for (size_t s = 0; s < leaf.sinks.size(); ++s) {
        const Sink &sk = leaf.sinks[s];
        switch (sk.kind) {
          case SinkKind::kStoreSram: {
            int32_t val = ctx.materialize(ctx.visit(sk.value));
            AccessClass cls = classifyAddr(prog, leaf, sk.addr);
            VEmission em;
            em.kind = VEmission::Kind::kVecOut;
            em.sinkIdx = static_cast<int32_t>(s);
            em.value = val;
            em.cond = EmitCond::everyWavefront();
            if (cls == AccessClass::kGather) {
                // Scatter within the scratchpad: emit the computed
                // address vector alongside the data.
                int32_t addr_v = ctx.materialize(ctx.visit(sk.addr));
                VEmission ea;
                ea.kind = VEmission::Kind::kVecOut;
                ea.sinkIdx = static_cast<int32_t>(s);
                ea.value = addr_v;
                ea.cond = EmitCond::everyWavefront();
                ea.scatterAddrForSink = static_cast<int32_t>(s);
                ctx.out.emissions.push_back(ea);
            }
            ctx.out.emissions.push_back(em);
            break;
          }
          case SinkKind::kFold: {
            int32_t val = ctx.visit(sk.value);
            int lvl = ctx.leafCtrLevel(sk.foldLevel);
            if (lvl < 0) {
                ctx.out.error =
                    strfmt("%s: fold level is not a leaf counter",
                           leaf.name.c_str());
                return ctx.out;
            }
            if (sk.crossLane) {
                val = ctx.materialize(val);
                for (uint32_t dist = 1; dist < lanes; dist *= 2) {
                    VOp op;
                    op.kind = StageKind::kReduceStep;
                    op.op = sk.foldOp;
                    op.a = val;
                    op.reduceDist = static_cast<uint8_t>(dist);
                    val = ctx.appendOp(op);
                }
            }
            VOp acc;
            acc.kind = StageKind::kAccum;
            acc.op = sk.foldOp;
            acc.a = val;
            acc.accLevel = static_cast<uint8_t>(lvl);
            val = ctx.appendOp(acc);
            if (sk.postScale != kNone || sk.postOffset != kNone) {
                int32_t sc = sk.postScale != kNone
                                 ? ctx.visit(sk.postScale)
                                 : ctx.value({VValue::Kind::kImm,
                                              floatToWord(1.0f), -1, -1});
                int32_t of = sk.postOffset != kNone
                                 ? ctx.visit(sk.postOffset)
                                 : ctx.value({VValue::Kind::kImm,
                                              floatToWord(0.0f), -1, -1});
                VOp fma;
                fma.kind = StageKind::kMap;
                fma.op = FuOp::kFMA;
                fma.a = val;
                fma.b = sc;
                fma.c = of;
                val = ctx.appendOp(fma);
            }

            VEmission em;
            em.sinkIdx = static_cast<int32_t>(s);
            em.value = val;
            em.cond = EmitCond::lastAtLevel(static_cast<uint8_t>(lvl));
            em.kind = (sk.dest == FoldDest::kSramAddr)
                          ? VEmission::Kind::kVecOut
                          : VEmission::Kind::kScalOut;
            ctx.out.emissions.push_back(em);
            break;
          }
          case SinkKind::kFlatMapSram: {
            int32_t pred = ctx.visit(sk.pred);
            VOp mask;
            mask.kind = StageKind::kMap;
            mask.op = FuOp::kNop;
            mask.a = pred;
            mask.setsMask = true;
            ctx.appendOp(mask);
            int32_t val = ctx.materialize(ctx.visit(sk.value));
            VEmission em;
            em.kind = VEmission::Kind::kVecOut;
            em.sinkIdx = static_cast<int32_t>(s);
            em.value = val;
            em.cond = EmitCond::everyWavefront();
            em.coalesce = true;
            ctx.out.emissions.push_back(em);
            VEmission cnt;
            cnt.kind = VEmission::Kind::kCountOut;
            cnt.sinkIdx = static_cast<int32_t>(s);
            cnt.countOfSink = static_cast<int32_t>(s);
            ctx.out.emissions.push_back(cnt);
            break;
          }
          case SinkKind::kStreamOut: {
            int32_t val = ctx.materialize(ctx.visit(sk.value));
            VEmission em;
            em.kind = VEmission::Kind::kVecOut;
            em.sinkIdx = static_cast<int32_t>(s);
            em.value = val;
            em.cond = EmitCond::everyWavefront();
            ctx.out.emissions.push_back(em);
            break;
          }
          case SinkKind::kScatterOut: {
            if (sk.scatterPred != kNone) {
                int32_t pred = ctx.visit(sk.scatterPred);
                VOp mask;
                mask.kind = StageKind::kMap;
                mask.op = FuOp::kNop;
                mask.a = pred;
                mask.setsMask = true;
                ctx.appendOp(mask);
            }
            int32_t addr_v = ctx.materialize(ctx.visit(sk.dramAddr));
            int32_t val = ctx.materialize(ctx.visit(sk.value));
            VEmission ea;
            ea.kind = VEmission::Kind::kVecOut;
            ea.sinkIdx = static_cast<int32_t>(s);
            ea.value = addr_v;
            ea.cond = EmitCond::everyWavefront();
            ea.scatterAddrForSink = static_cast<int32_t>(s);
            ctx.out.emissions.push_back(ea);
            VEmission em;
            em.kind = VEmission::Kind::kVecOut;
            em.sinkIdx = static_cast<int32_t>(s);
            em.value = val;
            em.cond = EmitCond::everyWavefront();
            ctx.out.emissions.push_back(em);
            break;
          }
        }
    }

    // A leaf whose sinks produced no pipeline ops still needs one stage.
    if (ctx.out.ops.empty()) {
        VOp nop;
        nop.kind = StageKind::kMap;
        nop.op = FuOp::kNop;
        ctx.appendOp(nop);
    }
    return ctx.out;
}

std::vector<StageCfg>
lowerScalarExpr(const Program &prog, ExprId expr,
                const std::map<CtrId, int> &ctrLevel,
                const std::map<CtrId, int> &scalarPort, uint8_t &addrReg,
                std::string *err)
{
    std::vector<StageCfg> stages;
    uint8_t nextReg = 0;

    // Malformed user expressions become diagnosed errors when the
    // caller provides `err`; without it they abort (internal callers
    // that already validated their input).
    auto bad = [&](const std::string &msg) {
        if (!err)
            fatal("%s", msg.c_str());
        if (err->empty())
            *err = msg;
    };

    // Recursive lowering returning an Operand.
    std::function<Operand(ExprId)> lower = [&](ExprId id) -> Operand {
        if (err && !err->empty())
            return Operand::none();
        const Expr &e = prog.exprs[id];
        switch (e.kind) {
          case ExprKind::kConst:
            return Operand::immWord(e.cval);
          case ExprKind::kArg:
            return Operand::immWord(prog.args[e.arg].value);
          case ExprKind::kCtr: {
            auto lit = ctrLevel.find(e.ctr);
            if (lit != ctrLevel.end())
                return Operand::ctr(static_cast<uint8_t>(lit->second));
            auto sit = scalarPort.find(e.ctr);
            if (sit == scalarPort.end()) {
                bad(strfmt(
                    "scalar expr references unmapped counter '%s'",
                    prog.ctrs[e.ctr].name.c_str()));
                return Operand::none();
            }
            return Operand::scalarIn(static_cast<uint8_t>(sit->second));
          }
          case ExprKind::kAlu: {
            Operand a = e.a != kNone ? lower(e.a) : Operand::none();
            Operand b = e.b != kNone ? lower(e.b) : Operand::none();
            Operand c = e.c != kNone ? lower(e.c) : Operand::none();
            StageCfg st;
            st.kind = StageKind::kMap;
            st.op = e.alu;
            st.a = a;
            st.b = b;
            st.c = c;
            if (nextReg >= kMaxLanes) {
                bad("scalar expr too deep");
                return Operand::none();
            }
            st.dstReg = nextReg++;
            stages.push_back(st);
            return Operand::reg(st.dstReg);
          }
          default:
            bad("scalar address expression may only use counters, "
                "arguments and ALU ops");
            return Operand::none();
        }
    };

    Operand root = lower(expr);
    if (err && !err->empty()) {
        stages.clear();
        addrReg = 0;
        return stages;
    }
    if (root.kind != OperandKind::kReg) {
        StageCfg st;
        st.kind = StageKind::kMap;
        st.op = FuOp::kNop;
        st.a = root;
        st.dstReg = nextReg++;
        stages.push_back(st);
        root = Operand::reg(st.dstReg);
    }
    addrReg = root.index;
    return stages;
}

} // namespace plast::compiler
