/**
 * @file
 * Compile feasibility pre-check: totals the virtual PCU / PMU / AG
 * demand, scratchpad bytes and per-port channel pressure of a program
 * against the target ArchParams *before* running placement and
 * routing, and names the binding resource when the design cannot fit.
 *
 * The counting rules mirror the mapper's unit-construction phases
 * exactly (one PCU per partition chunk, one PMU per (memory, reader)
 * pair, one AG per transfer / DRAM stream / stream-out sink), so a
 * design the pre-check rejects would necessarily fail the full
 * pipeline — the pre-check just fails in microseconds with a
 * structured report instead of deep inside placement. Scratchpad
 * demand is checked at the N-buffer floor (`nbufMin`), not the
 * requested depth, so designs the capacity-spill path can still save
 * are NOT rejected here.
 */

#ifndef PLAST_COMPILER_PRECHECK_HPP
#define PLAST_COMPILER_PRECHECK_HPP

#include "arch/params.hpp"
#include "compiler/diagnostics.hpp"
#include "compiler/mapper.hpp"
#include "pir/ir.hpp"

namespace plast::compiler
{

/**
 * Total resource demand vs capacity. `feasible` is false when any
 * check is over; `binding` names the first binding resource. Leaves
 * whose lowering fails are skipped (the mapper reports those with a
 * per-leaf diagnosis).
 */
CompileDiagnostics precheckProgram(const pir::Program &prog,
                                   const ArchParams &params,
                                   const UnitMask &mask = UnitMask{});

} // namespace plast::compiler

#endif // PLAST_COMPILER_PRECHECK_HPP
