#include "compiler/partition.hpp"

#include <algorithm>
#include <set>

#include "base/logging.hpp"

namespace plast::compiler
{

namespace
{

/** Last op index (global) that reads each value; -1 if never read. */
std::vector<int32_t>
computeLastUse(const VirtualLeaf &leaf)
{
    std::vector<int32_t> last(leaf.values.size(), -1);
    for (size_t i = 0; i < leaf.ops.size(); ++i) {
        for (int32_t v : {leaf.ops[i].a, leaf.ops[i].b, leaf.ops[i].c}) {
            if (v >= 0)
                last[v] = static_cast<int32_t>(i);
        }
    }
    return last;
}

struct Analyzer
{
    const VirtualLeaf &leaf;
    const std::vector<int32_t> &lastUse;
    /** # scalar emissions per defining value. */
    std::vector<uint32_t> scalEmits;
    std::vector<uint32_t> vecEmits;
    uint32_t dynBoundScalars = 0;

    explicit Analyzer(const VirtualLeaf &l,
                      const std::vector<int32_t> &lu)
        : leaf(l), lastUse(lu), scalEmits(l.values.size(), 0),
          vecEmits(l.values.size(), 0)
    {
        for (const VEmission &em : leaf.emissions) {
            if (em.value < 0)
                continue;
            if (em.kind == VEmission::Kind::kScalOut)
                ++scalEmits[em.value];
            else if (em.kind == VEmission::Kind::kVecOut)
                ++vecEmits[em.value];
        }
        // kCountOut emissions ride on the coalescing vector output's
        // chunk; they cost a scalar output there.
        for (const VEmission &em : leaf.emissions) {
            if (em.kind != VEmission::Kind::kCountOut)
                continue;
            for (const VEmission &vo : leaf.emissions) {
                if (vo.kind == VEmission::Kind::kVecOut &&
                    vo.sinkIdx == em.countOfSink && vo.coalesce &&
                    vo.value >= 0)
                    ++scalEmits[vo.value];
            }
        }
        for (int8_t d : leaf.dynBoundScalar)
            dynBoundScalars += d >= 0 ? 1 : 0;
    }

    /** Metrics of the candidate chunk [first..last]. */
    ChunkMetrics
    metrics(int32_t first, int32_t last) const
    {
        ChunkMetrics m;
        m.stages = static_cast<uint32_t>(last - first + 1);

        std::set<int32_t> scalars, vec_ext, vec_fwd, vouts;
        uint32_t souts = 0;
        for (int32_t i = first; i <= last; ++i) {
            const VOp &op = leaf.ops[i];
            for (int32_t v : {op.a, op.b, op.c}) {
                if (v < 0)
                    continue;
                const VValue &val = leaf.values[v];
                switch (val.kind) {
                  case VValue::Kind::kScalar:
                    scalars.insert(val.index);
                    break;
                  case VValue::Kind::kVecIn:
                    vec_ext.insert(val.index);
                    break;
                  case VValue::Kind::kOp:
                    if (val.def < first)
                        vec_fwd.insert(v);
                    break;
                  default:
                    break;
                }
            }
        }
        // Values defined here and needed later, plus emissions.
        for (int32_t i = first; i <= last; ++i) {
            int32_t v = leaf.ops[i].result;
            if (v < 0)
                continue;
            if (lastUse[v] > last)
                vouts.insert(v);
            if (vecEmits[v] > 0)
                vouts.insert(v); // emission shares a vector output port
            souts += scalEmits[v];
        }
        // Peak live registers: op results defined at or before stage p
        // still needed after stage p (in-chunk use, later chunk, or
        // emission at retire).
        uint32_t peak = 0;
        for (int32_t p = first; p <= last; ++p) {
            uint32_t live = 0;
            for (int32_t i = first; i <= p; ++i) {
                int32_t v = leaf.ops[i].result;
                if (v < 0)
                    continue;
                bool needed = lastUse[v] > p || vecEmits[v] > 0 ||
                              scalEmits[v] > 0;
                if (needed)
                    ++live;
            }
            peak = std::max(peak, live);
        }

        m.scalarIns =
            static_cast<uint32_t>(scalars.size()) + dynBoundScalars;
        m.vectorIns =
            static_cast<uint32_t>(vec_ext.size() + vec_fwd.size());
        m.vectorOuts = static_cast<uint32_t>(vouts.size());
        m.scalarOuts = souts;
        m.regs = peak;
        return m;
    }

    bool
    fits(const ChunkMetrics &m, const PcuParams &p) const
    {
        return m.stages <= p.stages && m.regs <= p.regsPerStage &&
               m.scalarIns <= p.scalarIns && m.scalarOuts <= p.scalarOuts &&
               m.vectorIns <= p.vectorIns && m.vectorOuts <= p.vectorOuts;
    }
};

} // namespace

PartitionResult
partitionLeaf(const VirtualLeaf &leaf, const PcuParams &params)
{
    PartitionResult res;
    if (leaf.ops.empty()) {
        res.error = "leaf has no operations";
        return res;
    }
    if (leaf.chain.ctrs.size() > params.counters) {
        res.error = strfmt("%zu counters exceed the chain depth %u",
                           leaf.chain.ctrs.size(), params.counters);
        return res;
    }

    std::vector<int32_t> last_use = computeLastUse(leaf);
    Analyzer an(leaf, last_use);

    int32_t first = 0;
    const int32_t n = static_cast<int32_t>(leaf.ops.size());
    for (int32_t i = 0; i < n; ++i) {
        ChunkMetrics m = an.metrics(first, i);
        if (!an.fits(m, params)) {
            if (i == first) {
                res.error = strfmt(
                    "op %d does not fit an empty PCU (stages=%u regs=%u "
                    "si=%u so=%u vi=%u vo=%u)",
                    i, m.stages, m.regs, m.scalarIns, m.scalarOuts,
                    m.vectorIns, m.vectorOuts);
                return res;
            }
            Chunk c;
            c.firstOp = first;
            c.lastOp = i - 1;
            c.metrics = an.metrics(first, i - 1);
            res.chunks.push_back(c);
            first = i;
            // Re-check the op in its fresh chunk.
            ChunkMetrics m2 = an.metrics(first, i);
            if (!an.fits(m2, params)) {
                res.error = strfmt(
                    "op %d does not fit an empty PCU (stages=%u regs=%u "
                    "si=%u so=%u vi=%u vo=%u)",
                    i, m2.stages, m2.regs, m2.scalarIns, m2.scalarOuts,
                    m2.vectorIns, m2.vectorOuts);
                return res;
            }
        }
        if (leaf.ops[i].barrierAfter && i + 1 < n) {
            Chunk c;
            c.firstOp = first;
            c.lastOp = i;
            c.metrics = an.metrics(first, i);
            res.chunks.push_back(c);
            first = i + 1;
        }
    }
    if (first < n) {
        Chunk c;
        c.firstOp = first;
        c.lastOp = n - 1;
        c.metrics = an.metrics(first, n - 1);
        res.chunks.push_back(c);
    }
    res.ok = true;
    return res;
}

int32_t
chunkOfOp(const PartitionResult &part, int32_t opIdx)
{
    for (size_t c = 0; c < part.chunks.size(); ++c) {
        if (opIdx >= part.chunks[c].firstOp &&
            opIdx <= part.chunks[c].lastOp)
            return static_cast<int32_t>(c);
    }
    panic("chunkOfOp: op %d not in any chunk", opIdx);
}

} // namespace plast::compiler
