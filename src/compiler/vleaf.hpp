/**
 * @file
 * Virtual-unit construction (§3.6 step 1): each compute leaf is lowered
 * to a *virtual PCU* — an abstract unit with unbounded stages,
 * registers and IO. The lowering analyses every SRAM access (linear /
 * broadcast / gather via numeric probing), linearises the expression
 * DAG into a pipeline schedule that keeps live ranges short, and
 * expands folds into reduction-tree and accumulator stages. The
 * partitioner (partition.hpp) then splits virtual units into physical
 * PCUs; the same path powers the Figure 7 design-space sweeps.
 */

#ifndef PLAST_COMPILER_VLEAF_HPP
#define PLAST_COMPILER_VLEAF_HPP

#include <map>
#include <string>
#include <vector>

#include "arch/config.hpp"
#include "pir/ir.hpp"

namespace plast::compiler
{

/** How a leaf's SRAM load is served by a PMU read port. */
enum class AccessClass : uint8_t
{
    kVecLinear, ///< addr affine, stride one in the vectorized counter
    kBroadcast, ///< addr independent of the vectorized counter
    kGather,    ///< computed per-lane addresses (needs an addr stream)
};

std::string accessClassName(AccessClass c);

/** A vector input of the virtual unit. */
struct VecSource
{
    enum class Kind : uint8_t
    {
        kSramLoad,  ///< PMU read stream (expr kLoadSram)
        kDramStream,///< AG dense load stream (expr kStreamIn)
        kGatherData,///< PMU gather read data (addr computed on-fabric)
    };
    Kind kind = Kind::kSramLoad;
    pir::ExprId expr = pir::kNone; ///< the load / stream expr
    AccessClass access = AccessClass::kVecLinear;
    int32_t addrValue = -1; ///< kGatherData: value id of the address
};

/** A scalar input of the virtual unit. */
struct ScalSource
{
    enum class Kind : uint8_t
    {
        kOuterCtr,  ///< outer-controller counter export
        kLeafScalar,///< cross-leaf scalar stream (pir ScalarIn)
        kDynBound,  ///< dynamic counter bound
    };
    Kind kind = Kind::kOuterCtr;
    pir::CtrId ctr = pir::kNone;
    int32_t scalarIn = pir::kNone; ///< index into leaf.scalarIns
    int32_t boundCtrLevel = -1;    ///< which leaf counter it bounds
};

/** One value in the virtual pipeline. */
struct VValue
{
    enum class Kind : uint8_t
    {
        kImm,    ///< literal / resolved argument
        kCtr,    ///< leaf counter (level)
        kLane,   ///< lane id
        kScalar, ///< scalar input index
        kVecIn,  ///< vector input index
        kOp,     ///< produced by pipeline op `def`
    };
    Kind kind = Kind::kImm;
    Word imm = 0;
    int32_t index = -1; ///< ctr level / scalar idx / vec idx
    int32_t def = -1;   ///< defining op for kOp
};

/** One pipeline operation (maps 1:1 to a physical stage). */
struct VOp
{
    StageKind kind = StageKind::kMap;
    FuOp op = FuOp::kNop;
    int32_t a = -1, b = -1, c = -1; ///< value ids
    int32_t result = -1;            ///< value id defined
    bool setsMask = false;
    uint8_t reduceDist = 1;
    uint8_t accLevel = 0;
    /** Gather barrier: ops after this one must live in a later PCU so
     *  the address can round-trip through the PMU. */
    bool barrierAfter = false;
};

/** What a chunk must emit for a program sink. */
struct VEmission
{
    enum class Kind : uint8_t { kVecOut, kScalOut, kCountOut };
    Kind kind = Kind::kVecOut;
    int32_t sinkIdx = -1;  ///< index into the leaf's sinks
    int32_t value = -1;    ///< value id emitted (kVecOut/kScalOut)
    EmitCond cond;
    bool coalesce = false;
    int32_t countOfSink = -1; ///< kCountOut: FlatMap sink measured
    /** >=0: this is the address stream feeding a gather vector source. */
    int32_t gatherVecSource = -1;
    /** >=0: this is the address stream of a scatter-style sink. */
    int32_t scatterAddrForSink = -1;
};

/** A compute leaf lowered to one virtual PCU. */
struct VirtualLeaf
{
    pir::NodeId node = pir::kNone;
    std::string name;
    /** Non-empty when lowering failed; the rest of the leaf is then
     *  partial and must not be partitioned or mapped. */
    std::string error;
    ChainCfg chain;              ///< leaf counter chain (bounds resolved)
    std::vector<pir::CtrId> ctrIds; ///< CtrId per chain level
    std::vector<int8_t> dynBoundScalar; ///< per level: scalar idx or -1
    std::vector<VecSource> vecSources;
    std::vector<ScalSource> scalSources;
    std::vector<VValue> values;
    std::vector<VOp> ops;        ///< pipeline schedule, in order
    std::vector<VEmission> emissions;
};

/**
 * Numeric linearity probe: evaluates `addr` under random counter
 * assignments at several lanes. Returns the access class. Exposed for
 * unit testing.
 */
AccessClass classifyAddr(const pir::Program &prog, const pir::Node &leaf,
                         pir::ExprId addr);

/** Lower one compute leaf to a virtual unit. */
VirtualLeaf lowerLeaf(const pir::Program &prog, pir::NodeId leaf,
                      uint32_t lanes);

/**
 * Lower a scalar address expression to PMU/AG datapath stages.
 * `ctrLevel` maps CtrId -> chain level of the port's own chain;
 * `scalarPort` maps CtrId (outer counters) -> scalar input port.
 * Returns the stages and sets `addrReg`.
 *
 * With `err` provided, malformed expressions (unmapped counters,
 * too-deep trees, non-address expr kinds) set *err and return empty
 * stages instead of aborting the process; with err == nullptr they
 * remain fatal (internal-invariant callers).
 */
std::vector<StageCfg>
lowerScalarExpr(const pir::Program &prog, pir::ExprId expr,
                const std::map<pir::CtrId, int> &ctrLevel,
                const std::map<pir::CtrId, int> &scalarPort,
                uint8_t &addrReg, std::string *err = nullptr);

} // namespace plast::compiler

#endif // PLAST_COMPILER_VLEAF_HPP
