#include "compiler/precheck.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "base/logging.hpp"
#include "compiler/partition.hpp"
#include "compiler/vleaf.hpp"

namespace plast::compiler
{

using namespace pir;

namespace
{

uint32_t
maskedCount(const std::vector<uint32_t> &masked, uint32_t capacity)
{
    uint32_t n = 0;
    for (uint32_t m : masked)
        n += m < capacity ? 1 : 0;
    return n;
}

} // namespace

CompileDiagnostics
precheckProgram(const Program &prog, const ArchParams &params,
                const UnitMask &mask)
{
    CompileDiagnostics diag;

    // ---- walk the controller tree --------------------------------
    std::vector<NodeId> leaves, xfers;
    std::function<void(NodeId)> walk = [&](NodeId id) {
        const Node &n = prog.nodes[id];
        switch (n.kind) {
          case NodeKind::kOuter:
            for (NodeId c : n.children)
                walk(c);
            return;
          case NodeKind::kCompute:
            leaves.push_back(id);
            return;
          case NodeKind::kTransfer:
            xfers.push_back(id);
            return;
        }
    };
    walk(prog.root);

    // ---- PCU demand: one per partition chunk ---------------------
    uint64_t pcuDemand = 0;
    uint32_t maxVi = 0, maxVo = 0, maxSi = 0, maxSo = 0;
    std::map<NodeId, VirtualLeaf> vleaves;
    for (NodeId l : leaves) {
        VirtualLeaf vl = lowerLeaf(prog, l, params.pcu.lanes);
        if (!vl.error.empty())
            continue; // mapper reports the per-leaf diagnosis
        PartitionResult pr = partitionLeaf(vl, params.pcu);
        if (!pr.ok) {
            ResourceCheck c;
            c.resource = "pcu.pipeline";
            c.over = true;
            c.detail = strfmt("leaf '%s': %s", vl.name.c_str(),
                              pr.error.c_str());
            diag.checks.push_back(c);
            vleaves.emplace(l, std::move(vl));
            continue;
        }
        pcuDemand += pr.chunks.size();
        for (const Chunk &ch : pr.chunks) {
            maxVi = std::max(maxVi, ch.metrics.vectorIns);
            maxVo = std::max(maxVo, ch.metrics.vectorOuts);
            maxSi = std::max(maxSi, ch.metrics.scalarIns);
            maxSo = std::max(maxSo, ch.metrics.scalarOuts);
        }
        vleaves.emplace(l, std::move(vl));
    }

    // ---- memory readers / writers (mirrors Mapper::analyze) ------
    std::map<MemId, uint64_t> readerCount, writerCount;
    for (NodeId l : leaves) {
        auto it = vleaves.find(l);
        if (it == vleaves.end())
            continue;
        const VirtualLeaf &vl = it->second;
        for (const VecSource &src : vl.vecSources) {
            if (src.kind == VecSource::Kind::kDramStream)
                continue;
            readerCount[prog.exprs[src.expr].mem]++;
        }
        const Node &n = prog.nodes[l];
        for (const Sink &sk : n.sinks) {
            bool sramWrite = sk.kind == SinkKind::kStoreSram ||
                             sk.kind == SinkKind::kFlatMapSram ||
                             (sk.kind == SinkKind::kFold &&
                              sk.dest == FoldDest::kSramAddr);
            if (sramWrite)
                writerCount[sk.mem]++;
        }
    }
    for (NodeId t : xfers) {
        const TransferDesc &x = prog.nodes[t].xfer;
        if (x.sparse) {
            readerCount[x.addrMem]++;
            writerCount[x.sram]++;
        } else if (x.load) {
            writerCount[x.sram]++;
        } else {
            readerCount[x.sram]++;
        }
    }

    // ---- PMU demand: one per (memory, reader) --------------------
    uint64_t pmuDemand = 0;
    for (size_t m = 0; m < prog.mems.size(); ++m) {
        if (prog.mems[m].kind != MemKind::kSram)
            continue;
        MemId mid = static_cast<MemId>(m);
        uint64_t rds = readerCount.count(mid) ? readerCount[mid] : 0;
        uint64_t wrs = writerCount.count(mid) ? writerCount[mid] : 0;
        if (rds == 0 && wrs == 0)
            continue;
        if (wrs > 2) {
            ResourceCheck c;
            c.resource = "pmu.writePorts";
            c.demand = wrs;
            c.capacity = 2;
            c.over = true;
            c.detail = strfmt("memory '%s'", prog.mems[m].name.c_str());
            diag.checks.push_back(c);
        }
        pmuDemand += std::max<uint64_t>(rds, 1);
    }

    // ---- AG demand: transfers + streams + stream-out sinks -------
    uint64_t agDemand = xfers.size();
    for (NodeId l : leaves) {
        auto it = vleaves.find(l);
        if (it == vleaves.end())
            continue;
        const VirtualLeaf &vl = it->second;
        for (const VecSource &src : vl.vecSources)
            if (src.kind == VecSource::Kind::kDramStream)
                ++agDemand;
        for (const Sink &sk : prog.nodes[l].sinks)
            if (sk.kind == SinkKind::kStreamOut ||
                sk.kind == SinkKind::kScatterOut)
                ++agDemand;
    }

    // ---- unit-count checks ---------------------------------------
    auto pushCheck = [&](const char *res, uint64_t demand,
                         uint64_t capacity, const std::string &detail) {
        ResourceCheck c;
        c.resource = res;
        c.demand = demand;
        c.capacity = capacity;
        c.over = demand > capacity;
        c.detail = detail;
        diag.checks.push_back(c);
    };
    uint32_t maskedPcus = maskedCount(mask.pcus, params.numPcus());
    uint32_t maskedPmus = maskedCount(mask.pmus, params.numPmus());
    pushCheck("pcu", pcuDemand, params.numPcus() - maskedPcus,
              maskedPcus ? strfmt("%u masked as faulted", maskedPcus)
                         : "");
    pushCheck("pmu", pmuDemand, params.numPmus() - maskedPmus,
              maskedPmus ? strfmt("%u masked as faulted", maskedPmus)
                         : "");
    pushCheck("ag", agDemand, params.numAgs, "");

    // ---- per-port channel pressure (chunk maxima vs PCU ports) ---
    pushCheck("pcu.vectorIns", maxVi, params.pcu.vectorIns, "");
    pushCheck("pcu.vectorOuts", maxVo, params.pcu.vectorOuts, "");
    pushCheck("pcu.scalarIns", maxSi, params.pcu.scalarIns, "");
    pushCheck("pcu.scalarOuts", maxSo, params.pcu.scalarOuts, "");

    // ---- scratchpad bytes at the spill floor ---------------------
    // Capacity spilling can shrink N-buffer depth down to nbufMin, so
    // only a memory whose floor demand exceeds the physical scratchpad
    // is genuinely infeasible.
    uint64_t worstWords = 0;
    std::string worstMem;
    bool scratchOver = false;
    for (size_t m = 0; m < prog.mems.size(); ++m) {
        const MemDecl &md = prog.mems[m];
        if (md.kind != MemKind::kSram)
            continue;
        MemId mid = static_cast<MemId>(m);
        if (!readerCount.count(mid) && !writerCount.count(mid))
            continue;
        uint64_t effective = md.mode == BankingMode::kDup
                                 ? params.pmu.totalWords() /
                                       params.pmu.banks
                                 : params.pmu.totalWords();
        uint64_t floorWords =
            static_cast<uint64_t>(std::max<uint32_t>(md.nbufMin, 1)) *
            md.sizeWords;
        if (floorWords > effective) {
            ResourceCheck c;
            c.resource = "pmu.scratchpad";
            c.demand = floorWords;
            c.capacity = effective;
            c.over = true;
            c.detail = strfmt("memory '%s' (%u words x %u bufs min)",
                              md.name.c_str(),
                              static_cast<uint32_t>(md.sizeWords),
                              std::max<uint32_t>(md.nbufMin, 1));
            diag.checks.push_back(c);
            scratchOver = true;
        } else if (floorWords > worstWords) {
            worstWords = floorWords;
            worstMem = md.name;
        }
    }
    if (!scratchOver && worstWords > 0) {
        uint64_t effective = params.pmu.totalWords();
        pushCheck("pmu.scratchpad", worstWords, effective,
                  strfmt("largest memory '%s'", worstMem.c_str()));
    }

    // ---- verdict -------------------------------------------------
    diag.feasible = true;
    for (const ResourceCheck &c : diag.checks) {
        if (c.over) {
            diag.feasible = false;
            if (diag.binding.empty())
                diag.binding = c.resource;
        }
    }
    return diag;
}

} // namespace plast::compiler
