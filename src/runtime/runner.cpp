#include "runtime/runner.hpp"

#include "arch/cfgio.hpp"
#include "base/logging.hpp"
#include "base/profile.hpp"
#include "pir/serialize.hpp"
#include "pir/validate.hpp"

namespace plast
{

using namespace pir;

Runner::Runner(Program prog, ArchParams params, SimOptions simOpts)
    : prog_(std::move(prog)), params_(params), simOpts_(simOpts),
      profTid_(HostProfiler::currentTid()),
      profSinceUs_(HostProfiler::instance().nowUs())
{
}

void
Runner::adoptCompiled(std::shared_ptr<const compiler::MapResult> map)
{
    panic_if(compiled_, "adoptCompiled after compilation");
    panic_if(!map || !map->report.ok,
             "adoptCompiled with a null or failed compile result");
    panic_if(configTweak_ != nullptr,
             "adoptCompiled would discard a pending config tweak");
    shared_ = std::move(map);
    compiled_ = true;
}

void
Runner::setConfigTweak(std::function<void(FabricConfig &)> tweak)
{
    panic_if(compiled_, "setConfigTweak after compilation");
    configTweak_ = std::move(tweak);
}

void
Runner::setSimMode(SimMode mode)
{
    panic_if(fabric_ != nullptr, "setSimMode after the fabric was built");
    simOpts_.simMode = mode;
}

void
Runner::setUnitMask(compiler::UnitMask mask)
{
    panic_if(compiled_, "setUnitMask after compilation");
    mask_ = std::move(mask);
}

void
Runner::setCompileOptions(compiler::CompileOptions opts)
{
    panic_if(compiled_, "setCompileOptions after compilation");
    copts_ = opts;
}

void
Runner::setFaultInjector(resilience::FaultInjector *inj)
{
    injector_ = inj;
    if (fabric_)
        fabric_->armFaults(inj);
}

void
Runner::setCancelToken(const CancelToken *tok)
{
    cancel_ = tok;
    if (fabric_)
        fabric_->setCancelToken(tok);
}

std::vector<Word> &
Runner::dram(MemId id)
{
    fatal_if(prog_.mems.at(id).kind != MemKind::kDram,
             "Runner::dram on non-DRAM memory '%s'",
             prog_.mems[id].name.c_str());
    auto &buf = host_[id];
    buf.resize(prog_.mems[id].sizeWords, 0);
    return buf;
}

Status
Runner::tryCompile()
{
    if (compiled_)
        return Status();
    ScopedSpan span("host.compile");
    // Structural validation first: program shapes the compiler cannot
    // map get a diagnosis naming the construct, not a mapper error.
    std::vector<std::string> problems =
        validateProgram(prog_, params_.pcu.lanes);
    if (!problems.empty()) {
        return Status(StatusCode::kValidationError,
                      strfmt("validation of '%s' failed: %s",
                             prog_.name.c_str(), problems[0].c_str()));
    }
    compiler::MapResult mr =
        compiler::compileProgram(prog_, params_, mask_, copts_);
    if (!mr.report.ok) {
        map_ = std::move(mr);
        return Status(StatusCode::kCompileError,
                      strfmt("compilation of '%s' failed: %s\n%s",
                             prog_.name.c_str(),
                             map_.report.error.c_str(),
                             map_.report.diag.summary().c_str()));
    }
    if (configTweak_)
        configTweak_(mr.fabric);
    // Freeze: the compile result is immutable from here on, so the
    // serve config cache can hand it to other runners without copying.
    shared_ = std::make_shared<const compiler::MapResult>(std::move(mr));
    compiled_ = true;
    if (verbose())
        inform("%s: %s", prog_.name.c_str(),
               shared_->report.summary(params_).c_str());
    return Status();
}

void
Runner::ensureCompiled()
{
    Status st = tryCompile();
    fatal_if(!st.ok(), "%s", st.message().c_str());
}

void
Runner::buildFabric()
{
    ScopedSpan span("host.build-fabric");
    const compiler::MapResult &map = mapResult();
    fabric_ = std::make_unique<Fabric>(map.fabric, simOpts_);
    if (injector_)
        fabric_->armFaults(injector_);
    if (cancel_)
        fabric_->setCancelToken(cancel_);

    // Load the DRAM image.
    Addr max_extent = 0;
    for (size_t m = 0; m < prog_.mems.size(); ++m) {
        if (prog_.mems[m].kind != MemKind::kDram)
            continue;
        max_extent =
            std::max(max_extent, map.dramBase[m] +
                                     prog_.mems[m].sizeWords * 4 + 64);
    }
    fabric_->dram().reserve(max_extent);
    for (auto &[mid, data] : host_) {
        Addr base = map.dramBase[mid];
        for (size_t w = 0; w < data.size(); ++w)
            fabric_->dram().writeWord(base + w * 4, data[w]);
    }
}

void
Runner::collectResult(Result &out) const
{
    fabric_->dumpStats(out.stats);
    out.argOuts.resize(prog_.numArgOuts);
    for (uint32_t s = 0; s < prog_.numArgOuts; ++s)
        out.argOuts[s] = fabric_->argOut(s);
}

Runner::Result
Runner::run(Cycles maxCycles)
{
    ensureCompiled();
    buildFabric();
    Result res;
    res.cycles = fabric_->run(maxCycles);
    collectResult(res);
    return res;
}

Status
Runner::tryRun(Result &out, Cycles maxCycles)
{
    Status st = tryCompile();
    if (!st.ok())
        return st;
    buildFabric();
    RunResult rr = fabric_->runChecked(maxCycles);
    out.cycles = rr.cycles;
    collectResult(out);
    return rr.status;
}

Status
Runner::tryRunValidated(Result &out, Cycles maxCycles)
{
    Status st = tryRun(out, maxCycles);
    if (!st.ok())
        return st;
    Evaluator ev = runReference();
    counts_ = ev.counts();
    haveCounts_ = true;
    return compareWithReference(ev, out);
}

std::vector<Word>
Runner::readDram(MemId id) const
{
    panic_if(!fabric_, "readDram before run()");
    std::vector<Word> out(prog_.mems.at(id).sizeWords);
    Addr base = mapResult().dramBase[id];
    for (size_t w = 0; w < out.size(); ++w)
        out[w] = fabric_->dram().readWord(base + w * 4);
    return out;
}

Evaluator
Runner::runReference() const
{
    ScopedSpan span("host.reference");
    Evaluator ev(prog_, params_.pcu.lanes);
    for (const auto &[mid, data] : host_) {
        auto &buf = ev.dramBuf(mid);
        std::copy(data.begin(), data.end(), buf.begin());
    }
    ev.run();
    return ev;
}

const Evaluator::Counts &
Runner::referenceCounts()
{
    if (!haveCounts_) {
        Evaluator ev = runReference();
        counts_ = ev.counts();
        haveCounts_ = true;
    }
    return counts_;
}

Status
Runner::compareWithReference(const Evaluator &ev, const Result &res) const
{
    // argOut streams must match exactly (the evaluator is
    // wavefront-faithful, so float folds are bit-identical).
    for (uint32_t s = 0; s < prog_.numArgOuts; ++s) {
        const auto &want = ev.argOuts(static_cast<int32_t>(s));
        const auto &got = res.argOuts[s];
        if (want.size() != got.size()) {
            return Status(
                StatusCode::kMismatch,
                strfmt("%s argOut[%u]: expected %zu values, fabric "
                       "produced %zu",
                       prog_.name.c_str(), s, want.size(), got.size()));
        }
        for (size_t i = 0; i < want.size(); ++i) {
            if (want[i] != got[i]) {
                return Status(
                    StatusCode::kMismatch,
                    strfmt("%s argOut[%u][%zu]: expected 0x%08x (%f) "
                           "got 0x%08x (%f)",
                           prog_.name.c_str(), s, i, want[i],
                           wordToFloat(want[i]), got[i],
                           wordToFloat(got[i])));
            }
        }
    }

    // Output DRAM buffers must match where the reference wrote them.
    for (size_t m = 0; m < prog_.mems.size(); ++m) {
        if (prog_.mems[m].kind != MemKind::kDram)
            continue;
        MemId mid = static_cast<MemId>(m);
        const auto &want = ev.dramBuf(mid);
        std::vector<Word> got = readDram(mid);
        for (size_t w = 0; w < want.size(); ++w) {
            if (want[w] != got[w]) {
                return Status(
                    StatusCode::kMismatch,
                    strfmt("%s dram '%s'[%zu]: expected 0x%08x (%f) "
                           "got 0x%08x (%f)",
                           prog_.name.c_str(),
                           prog_.mems[m].name.c_str(), w, want[w],
                           wordToFloat(want[w]), got[w],
                           wordToFloat(got[w])));
            }
        }
    }
    return Status();
}

RunManifest
Runner::buildManifest(const Result &res, Status st) const
{
    RunManifest m;
    m.program = prog_.name;
    m.pirHash = fnv1a64(pir::programToText(prog_));
    m.archHash = fnv1a64(archParamsText(params_));
    m.schedMode = simOpts_.mode == SimOptions::Mode::kDense
                      ? "dense"
                      : "activity";
    m.simMode = simModeName(simOpts_.simMode);
    m.arch = params_.describe();
    m.compiled = compiled_;
    if (compiled_)
        m.configHash = fnv1a64(configToText(mapResult().fabric));
    const compiler::CompileDiagnostics &d = mapResult().report.diag;
    m.binding = d.binding;
    m.placementAttempts = d.placementAttempts;
    m.routeRounds = d.routeRounds;
    m.routedHops = d.routedHops;
    m.spills = static_cast<uint32_t>(d.spills.size());
    m.outcome = statusCodeName(st.code());
    if (!st.ok())
        m.detail = st.message();
    m.cycles = res.cycles;
    // Only this runner's own phases: the constructing thread's spans
    // since construction. Under the serve worker pool every runner
    // shares the process profiler; the unfiltered totals would blend
    // all workers' compiles and runs into every job's manifest.
    m.timingsUs =
        HostProfiler::instance().totalsUs(profTid_, profSinceUs_);
    m.metrics = res.stats.all();
    return m;
}

void
Runner::writeManifest(std::ostream &os, const Result &res, Status st) const
{
    buildManifest(res, st).writeJson(os);
}

Runner::Result
Runner::runValidated(Cycles maxCycles)
{
    Evaluator ev = runReference();
    counts_ = ev.counts();
    haveCounts_ = true;
    Result res = run(maxCycles);
    Status st = compareWithReference(ev, res);
    fatal_if(!st.ok(), "%s", st.message().c_str());
    return res;
}

} // namespace plast
