#include "runtime/manifest.hpp"

#include "base/logging.hpp"

namespace plast
{

uint64_t
fnv1a64(const std::string &text)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char c : text) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

std::string
archParamsText(const ArchParams &p)
{
    std::string out;
    auto kv = [&out](const char *k, uint64_t v) {
        out += strfmt("%s %llu\n", k, (unsigned long long)v);
    };
    kv("grid.cols", p.gridCols);
    kv("grid.rows", p.gridRows);
    kv("pcu.lanes", p.pcu.lanes);
    kv("pcu.stages", p.pcu.stages);
    kv("pcu.regsPerStage", p.pcu.regsPerStage);
    kv("pcu.scalarIns", p.pcu.scalarIns);
    kv("pcu.scalarOuts", p.pcu.scalarOuts);
    kv("pcu.vectorIns", p.pcu.vectorIns);
    kv("pcu.vectorOuts", p.pcu.vectorOuts);
    kv("pcu.counters", p.pcu.counters);
    kv("pcu.fifoDepth", p.pcu.fifoDepth);
    kv("pmu.banks", p.pmu.banks);
    kv("pmu.bankKilobytes", p.pmu.bankKilobytes);
    kv("pmu.stages", p.pmu.stages);
    kv("pmu.regsPerStage", p.pmu.regsPerStage);
    kv("pmu.scalarIns", p.pmu.scalarIns);
    kv("pmu.scalarOuts", p.pmu.scalarOuts);
    kv("pmu.vectorIns", p.pmu.vectorIns);
    kv("pmu.vectorOuts", p.pmu.vectorOuts);
    kv("pmu.counters", p.pmu.counters);
    kv("pmu.fifoDepth", p.pmu.fifoDepth);
    kv("pmu.ecc", p.pmu.ecc ? 1 : 0);
    kv("dram.channels", p.dram.channels);
    kv("dram.burstBytes", p.dram.burstBytes);
    kv("dram.banksPerChannel", p.dram.banksPerChannel);
    kv("dram.rowBytes", p.dram.rowBytes);
    kv("dram.tRcd", p.dram.tRcd);
    kv("dram.tCas", p.dram.tCas);
    kv("dram.tRp", p.dram.tRp);
    kv("dram.tRas", p.dram.tRas);
    kv("dram.tBurst", p.dram.tBurst);
    kv("dram.queueDepth", p.dram.queueDepth);
    kv("dram.ecc", p.dram.ecc ? 1 : 0);
    kv("numAgs", p.numAgs);
    kv("coalescerCacheLines", p.coalescerCacheLines);
    kv("coalescerMaxOutstanding", p.coalescerMaxOutstanding);
    kv("vectorTracks", p.vectorTracks);
    kv("scalarTracks", p.scalarTracks);
    kv("controlTracks", p.controlTracks);
    return out;
}

namespace
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out.push_back('\\');
            out.push_back(c);
        } else if (c == '\n') {
            out += "\\n";
        } else if (static_cast<unsigned char>(c) < 0x20) {
            out += strfmt("\\u%04x", c);
        } else {
            out.push_back(c);
        }
    }
    return out;
}

std::string
hex64(uint64_t v)
{
    return strfmt("0x%016llx", (unsigned long long)v);
}

} // namespace

void
RunManifest::writeJson(std::ostream &os) const
{
    // Fixed top-level key order — the schema contract. Maps emit in
    // std::map (sorted) order, so equal manifests are byte-identical.
    os << "{\n";
    os << "  \"schema\": \"" << kSchema << "\",\n";
    os << "  \"program\": \"" << jsonEscape(program) << "\",\n";
    os << "  \"pir_hash\": \"" << hex64(pirHash) << "\",\n";
    os << "  \"arch_hash\": \"" << hex64(archHash) << "\",\n";
    os << "  \"config_hash\": \"" << hex64(configHash) << "\",\n";
    os << "  \"seed\": " << seed << ",\n";
    os << "  \"sched_mode\": \"" << jsonEscape(schedMode) << "\",\n";
    os << "  \"sim_mode\": \"" << jsonEscape(simMode) << "\",\n";
    os << "  \"arch\": \"" << jsonEscape(arch) << "\",\n";
    os << "  \"compile\": {\n";
    os << "    \"compiled\": " << (compiled ? "true" : "false") << ",\n";
    os << "    \"binding\": \"" << jsonEscape(binding) << "\",\n";
    os << "    \"placement_attempts\": " << placementAttempts << ",\n";
    os << "    \"route_rounds\": " << routeRounds << ",\n";
    os << "    \"routed_hops\": " << routedHops << ",\n";
    os << "    \"spills\": " << spills << "\n";
    os << "  },\n";
    os << "  \"outcome\": \"" << jsonEscape(outcome) << "\",\n";
    os << "  \"detail\": \"" << jsonEscape(detail) << "\",\n";
    os << "  \"cycles\": " << cycles << ",\n";
    os << "  \"timings_us\": {";
    bool first = true;
    for (const auto &[name, us] : timingsUs) {
        os << (first ? "\n" : ",\n") << "    \"" << jsonEscape(name)
           << "\": " << us;
        first = false;
    }
    os << (first ? "" : "\n  ") << "},\n";
    os << "  \"metrics\": {";
    first = true;
    for (const auto &[name, value] : metrics) {
        os << (first ? "\n" : ",\n") << "    \"" << jsonEscape(name)
           << "\": " << value;
        first = false;
    }
    os << (first ? "" : "\n  ") << "}\n";
    os << "}\n";
}

} // namespace plast
