/**
 * @file
 * Post-run bottleneck analysis: aggregates the per-unit cycle-class
 * ledgers (SimUnit::acct()) over the mapped dataflow graph and walks
 * blame along producer->consumer channels from the root controller to
 * the resource that actually gates the application — a saturated DRAM
 * channel, a conflicted scratchpad, or a compute-bound pipeline.
 */

#ifndef PLAST_RUNTIME_BOTTLENECK_HPP
#define PLAST_RUNTIME_BOTTLENECK_HPP

#include <string>
#include <vector>

#include "arch/config.hpp"
#include "sim/fabric.hpp"
#include "sim/stall.hpp"

namespace plast
{

struct BottleneckReport
{
    /** One analyzed unit: its ledger plus the dominant cycle class. */
    struct UnitRow
    {
        UnitRef ref;
        std::string label;    ///< "pcu03 (dot.mul)"
        CycleAcct acct;
        uint64_t asleep = 0;  ///< unattributed tail cycles
        CycleClass dominant = CycleClass::kIdle;
    };

    Cycles cycles = 0;           ///< total simulated cycles
    std::vector<UnitRow> units;  ///< all used units, fabric order

    /** Blame chain from the root controller to the critical resource,
     *  one rendered step per hop. */
    std::vector<std::string> blamePath;
    /** One-line verdict naming the critical resource. */
    std::string critical;

    /** Human-readable report (table + blame chain + verdict). */
    std::string render() const;
};

/** Analyze a completed run. The fabric must have finished run(). */
BottleneckReport analyzeBottlenecks(const Fabric &fabric);

} // namespace plast

#endif // PLAST_RUNTIME_BOTTLENECK_HPP
