/**
 * @file
 * Post-run bottleneck analysis: aggregates the per-unit cycle-class
 * ledgers (SimUnit::acct()) over the mapped dataflow graph and walks
 * blame along producer->consumer channels from the root controller to
 * the resource that actually gates the application — a saturated DRAM
 * channel, a conflicted scratchpad, or a compute-bound pipeline.
 */

#ifndef PLAST_RUNTIME_BOTTLENECK_HPP
#define PLAST_RUNTIME_BOTTLENECK_HPP

#include <string>
#include <vector>

#include "arch/config.hpp"
#include "sim/fabric.hpp"
#include "sim/stall.hpp"

namespace plast
{

struct BottleneckReport
{
    /** One analyzed unit: its ledger plus the dominant cycle class. */
    struct UnitRow
    {
        UnitRef ref;
        std::string label;    ///< "pcu03 (dot.mul)"
        CycleAcct acct;
        uint64_t asleep = 0;  ///< unattributed tail cycles
        CycleClass dominant = CycleClass::kIdle;
    };

    Cycles cycles = 0;           ///< total simulated cycles
    std::vector<UnitRow> units;  ///< all used units, fabric order

    /** Blame chain from the root controller to the critical resource,
     *  one rendered step per hop. */
    std::vector<std::string> blamePath;
    /** One-line verdict naming the critical resource. */
    std::string critical;

    /** Human-readable report (table + blame chain + verdict). */
    std::string render() const;
};

/** Analyze a completed run. The fabric must have finished run(). */
BottleneckReport analyzeBottlenecks(const Fabric &fabric);

/**
 * Post-mortem for a hung fabric (runChecked returned kDeadlock,
 * kWatchdog or kLivelock): the full bottleneck ledger plus the wait
 * structure at the point of death — which units were mid-work and for
 * how long they had made no progress, which units were frozen by a
 * hard fault, and which streams still held undelivered tokens.
 */
struct DeadlockReport
{
    BottleneckReport bottlenecks;

    struct WaitingUnit
    {
        UnitRef ref;
        std::string label;
        bool stuck = false;   ///< frozen by an injected hard fault
        Cycles stalledFor = 0; ///< cycles since last forward progress
    };
    /** Units that were started but never finished, longest-stalled
     *  first. Empty when the hang is pre-start (lost start token). */
    std::vector<WaitingUnit> waiting;

    struct HeldStream
    {
        std::string name;
        size_t tokens = 0; ///< undelivered elements at the hang point
    };
    std::vector<HeldStream> held;

    /** One-line diagnosis (stuck unit / starved consumer / lost token). */
    std::string verdict;

    std::string render() const;
};

/** Analyze a fabric whose runChecked stopped without completing. */
DeadlockReport analyzeDeadlock(const Fabric &fabric);

} // namespace plast

#endif // PLAST_RUNTIME_BOTTLENECK_HPP
