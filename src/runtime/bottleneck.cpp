#include "runtime/bottleneck.hpp"

#include <algorithm>
#include <set>

#include "base/logging.hpp"

namespace plast
{

namespace
{

uint64_t
refKey(const UnitRef &r)
{
    return (static_cast<uint64_t>(r.cls) << 32) | r.index;
}

const SimUnit *
unitOf(const Fabric &f, const UnitRef &r)
{
    switch (r.cls) {
      case UnitClass::kPcu:
        return f.pcuPtr(r.index);
      case UnitClass::kPmu:
        return f.pmuPtr(r.index);
      case UnitClass::kAg:
        return f.agPtr(r.index);
      case UnitClass::kBox:
        return f.boxPtr(r.index);
      case UnitClass::kHost:
        return nullptr;
    }
    return nullptr;
}

std::string
labelOf(const Fabric &f, const UnitRef &r)
{
    switch (r.cls) {
      case UnitClass::kPcu:
        return strfmt("pcu%02u (%s)", r.index,
                      f.pcuPtr(r.index)->name().c_str());
      case UnitClass::kPmu:
        return strfmt("pmu%02u (%s)", r.index,
                      f.pmuPtr(r.index)->name().c_str());
      case UnitClass::kAg:
        return strfmt("ag%02u (%s)", r.index,
                      f.agPtr(r.index)->name().c_str());
      case UnitClass::kBox:
        return strfmt("box%02u (%s)", r.index,
                      f.boxPtr(r.index)->name().c_str());
      case UnitClass::kHost:
        return "host";
    }
    return "?";
}

/** Largest ledger bucket; earlier class wins ties (kActive first). */
CycleClass
dominantOf(const CycleAcct &a)
{
    size_t best = 0;
    uint64_t best_v = 0;
    for (size_t c = 0; c < kNumCycleClasses; ++c) {
        uint64_t v = a.by[c] + a.sleptBy[c];
        if (v > best_v) {
            best_v = v;
            best = c;
        }
    }
    return static_cast<CycleClass>(best);
}

/** How hard a unit is working (or waiting on memory): the blame walk
 *  follows the most-loaded neighbor. */
uint64_t
loadOf(const Fabric &f, const UnitRef &r)
{
    const SimUnit *u = unitOf(f, r);
    if (!u)
        return 0;
    const CycleAcct &a = u->acct();
    return a.active() + a.blocked(CycleClass::kDramWait) +
           a.blocked(CycleClass::kBankConflict);
}

bool
isDataKind(NetKind k)
{
    return k == NetKind::kScalar || k == NetKind::kVector;
}

/** Busiest DRAM channel and its bus utilization percent. */
uint32_t
busiestDramChannel(const Fabric &f, double &pct)
{
    const DramModel &d = f.mem().dram();
    uint32_t best = 0;
    uint64_t best_busy = 0;
    for (uint32_t c = 0; c < d.numChannels(); ++c) {
        uint64_t busy = d.channel(c).stats().busBusyCycles;
        if (busy > best_busy) {
            best_busy = busy;
            best = c;
        }
    }
    pct = f.now() ? 100.0 * static_cast<double>(best_busy) /
                        static_cast<double>(f.now())
                  : 0.0;
    return best;
}

double
pctOf(uint64_t part, uint64_t whole)
{
    return whole ? 100.0 * static_cast<double>(part) /
                       static_cast<double>(whole)
                 : 0.0;
}

} // namespace

BottleneckReport
analyzeBottlenecks(const Fabric &fabric)
{
    const FabricConfig &cfg = fabric.config();
    BottleneckReport rep;
    rep.cycles = fabric.now();

    auto add_row = [&](UnitClass cls, uint16_t idx) {
        UnitRef ref{cls, idx};
        const SimUnit *u = unitOf(fabric, ref);
        if (!u)
            return;
        BottleneckReport::UnitRow row;
        row.ref = ref;
        row.label = labelOf(fabric, ref);
        row.acct = u->acct();
        uint64_t accounted = row.acct.stepped + row.acct.slept;
        row.asleep = rep.cycles > accounted ? rep.cycles - accounted : 0;
        row.dominant = dominantOf(row.acct);
        rep.units.push_back(std::move(row));
    };
    for (size_t i = 0; i < cfg.pcus.size(); ++i)
        add_row(UnitClass::kPcu, static_cast<uint16_t>(i));
    for (size_t i = 0; i < cfg.pmus.size(); ++i)
        add_row(UnitClass::kPmu, static_cast<uint16_t>(i));
    for (size_t i = 0; i < cfg.ags.size(); ++i)
        add_row(UnitClass::kAg, static_cast<uint16_t>(i));
    for (size_t i = 0; i < cfg.boxes.size(); ++i)
        add_row(UnitClass::kBox, static_cast<uint16_t>(i));

    // ---- blame walk from the root controller -------------------------
    UnitRef cur{UnitClass::kBox, static_cast<uint16_t>(cfg.rootBox)};
    const SimUnit *root = unitOf(fabric, cur);
    if (!root)
        return rep;
    uint64_t root_non_active = 0;
    {
        const CycleAcct &a = root->acct();
        for (size_t c = 0; c < kNumCycleClasses; ++c) {
            if (static_cast<CycleClass>(c) != CycleClass::kActive)
                root_non_active += a.by[c] + a.sleptBy[c];
        }
        uint64_t accounted = a.stepped + a.slept;
        root_non_active +=
            rep.cycles > accounted ? rep.cycles - accounted : 0;
    }
    uint64_t root_dominant_blocked = 0;

    std::set<uint64_t> visited;
    while (true) {
        const SimUnit *u = unitOf(fabric, cur);
        if (!u)
            break;
        if (!visited.insert(refKey(cur)).second) {
            rep.critical = strfmt("cyclic wait through %s",
                                  labelOf(fabric, cur).c_str());
            break;
        }
        const CycleAcct &a = u->acct();
        CycleClass dom = dominantOf(a);
        uint64_t dom_cycles = a.blocked(dom);
        std::string label = labelOf(fabric, cur);
        rep.blamePath.push_back(
            strfmt("%s: dominant %s, %llu cycles (%.0f%% of run)",
                   label.c_str(), cycleClassName(dom),
                   static_cast<unsigned long long>(dom_cycles),
                   pctOf(dom_cycles, rep.cycles)));
        if (rep.blamePath.size() == 1)
            root_dominant_blocked = dom_cycles;

        double root_share = pctOf(root_dominant_blocked, root_non_active);

        if (dom == CycleClass::kActive) {
            rep.critical = strfmt(
                "compute-bound at %s (active %.0f%% of cycles; %.0f%% "
                "of root-controller stall follows this path)",
                label.c_str(), pctOf(a.active(), rep.cycles), root_share);
            break;
        }
        if (dom == CycleClass::kDramWait) {
            double ch_pct = 0.0;
            uint32_t ch = cur.cls == UnitClass::kAg
                              ? fabric.ag(cur.index).cfg().channel
                              : busiestDramChannel(fabric, ch_pct);
            if (cur.cls == UnitClass::kAg) {
                const auto &cs =
                    fabric.mem().dram().channel(ch).stats();
                ch_pct = pctOf(cs.busBusyCycles, rep.cycles);
            }
            rep.critical = strfmt(
                "DRAM channel %u saturated (%.0f%% bus busy), gating %s "
                "— %.0f%% of root-controller stall",
                ch, ch_pct, label.c_str(), root_share);
            break;
        }
        if (dom == CycleClass::kBankConflict) {
            rep.critical = strfmt(
                "scratchpad bank conflicts at %s (%llu cycles, %.0f%% "
                "of run) — %.0f%% of root-controller stall",
                label.c_str(),
                static_cast<unsigned long long>(dom_cycles),
                pctOf(dom_cycles, rep.cycles), root_share);
            break;
        }

        // Walk an edge: upstream for starvation/credits, downstream for
        // backpressure; pick the most-loaded neighbor.
        bool upstream =
            dom == CycleClass::kInputStarved || dom == CycleClass::kIdle ||
            dom == CycleClass::kCreditBlocked;
        bool control_edge = dom == CycleClass::kCreditBlocked;
        UnitRef next{};
        uint64_t next_load = 0;
        bool found = false;
        for (const ChannelCfg &ch : cfg.channels) {
            const UnitRef &here = upstream ? ch.dst.unit : ch.src.unit;
            const UnitRef &there = upstream ? ch.src.unit : ch.dst.unit;
            if (!(here == cur) || there.cls == UnitClass::kHost)
                continue;
            if (control_edge ? ch.kind != NetKind::kControl
                             : !isDataKind(ch.kind) && upstream)
                continue;
            if (visited.count(refKey(there)))
                continue;
            uint64_t l = loadOf(fabric, there);
            if (!found || l > next_load) {
                next = there;
                next_load = l;
                found = true;
            }
        }
        if (!found) {
            rep.critical = strfmt(
                "%s blocked on %s with no further on-fabric %s to blame",
                label.c_str(), cycleClassName(dom),
                upstream ? "producer" : "consumer");
            break;
        }
        cur = next;
    }

    return rep;
}

DeadlockReport
analyzeDeadlock(const Fabric &fabric)
{
    const FabricConfig &cfg = fabric.config();
    DeadlockReport rep;
    rep.bottlenecks = analyzeBottlenecks(fabric);

    auto scan = [&](UnitClass cls, const SimUnit *u, uint16_t idx) {
        if (!u || !u->busy())
            return;
        DeadlockReport::WaitingUnit w;
        w.ref = UnitRef{cls, idx};
        w.label = labelOf(fabric, w.ref);
        w.stuck = u->stuck();
        w.stalledFor = fabric.now() - u->lastProgressAt();
        rep.waiting.push_back(std::move(w));
    };
    for (size_t i = 0; i < cfg.pcus.size(); ++i)
        scan(UnitClass::kPcu, fabric.pcuPtr(i),
             static_cast<uint16_t>(i));
    for (size_t i = 0; i < cfg.pmus.size(); ++i)
        scan(UnitClass::kPmu, fabric.pmuPtr(i),
             static_cast<uint16_t>(i));
    for (size_t i = 0; i < cfg.ags.size(); ++i)
        scan(UnitClass::kAg, fabric.agPtr(i), static_cast<uint16_t>(i));
    for (size_t i = 0; i < cfg.boxes.size(); ++i)
        scan(UnitClass::kBox, fabric.boxPtr(i),
             static_cast<uint16_t>(i));
    std::sort(rep.waiting.begin(), rep.waiting.end(),
              [](const auto &a, const auto &b) {
                  return a.stalledFor > b.stalledFor;
              });

    for (const StreamBase *s : fabric.heldStreams())
        rep.held.push_back({s->name(), s->available()});

    // Diagnosis, most specific cause first.
    const DeadlockReport::WaitingUnit *frozen = nullptr;
    for (const auto &w : rep.waiting) {
        if (w.stuck)
            frozen = &w;
    }
    if (frozen) {
        rep.verdict = strfmt(
            "hard-faulted %s is frozen mid-run; %zu downstream unit(s) "
            "starved",
            frozen->label.c_str(), rep.waiting.size() - 1);
    } else if (rep.waiting.empty() && rep.held.empty()) {
        rep.verdict = "no unit mid-run and no tokens in flight — a "
                      "start/done control token was lost";
    } else if (rep.waiting.empty()) {
        rep.verdict = strfmt(
            "%zu stream(s) hold undelivered tokens but every unit is "
            "between runs — a control token was lost or misrouted",
            rep.held.size());
    } else {
        rep.verdict = strfmt(
            "%s stalled longest (%llu cycles) with %zu stream(s) "
            "holding tokens — circular or starved dependence",
            rep.waiting.front().label.c_str(),
            static_cast<unsigned long long>(
                rep.waiting.front().stalledFor),
            rep.held.size());
    }
    return rep;
}

std::string
DeadlockReport::render() const
{
    std::string out =
        strfmt("Deadlock report (hung at cycle %llu)\n",
               static_cast<unsigned long long>(bottlenecks.cycles));
    out += strfmt("Verdict: %s\n", verdict.c_str());
    if (!waiting.empty()) {
        out += "Units mid-run:\n";
        for (const WaitingUnit &w : waiting) {
            out += strfmt("  %-28s %s stalled %llu cycles\n",
                          w.label.c_str(),
                          w.stuck ? "[STUCK]" : "       ",
                          static_cast<unsigned long long>(w.stalledFor));
        }
    }
    if (!held.empty()) {
        out += "Streams holding tokens:\n";
        for (const HeldStream &h : held)
            out += strfmt("  %-40s %zu element(s)\n", h.name.c_str(),
                          h.tokens);
    }
    out += bottlenecks.render();
    return out;
}

std::string
BottleneckReport::render() const
{
    std::string out = strfmt("Bottleneck report (%llu cycles)\n",
                             static_cast<unsigned long long>(cycles));
    out += strfmt("  %-28s %7s", "unit", "active%");
    for (size_t c = 1; c < kNumCycleClasses; ++c)
        out += strfmt(" %7.7s",
                      cycleClassName(static_cast<CycleClass>(c)));
    out += strfmt(" %7s\n", "asleep%");
    for (const UnitRow &r : units) {
        out += strfmt("  %-28s", r.label.c_str());
        for (size_t c = 0; c < kNumCycleClasses; ++c) {
            uint64_t v = r.acct.by[c] + r.acct.sleptBy[c];
            out += strfmt(" %6.1f%%", pctOf(v, cycles));
        }
        out += strfmt(" %6.1f%%\n", pctOf(r.asleep, cycles));
    }
    out += "Blame path:\n";
    for (size_t i = 0; i < blamePath.size(); ++i)
        out += strfmt("  %s%s\n", i == 0 ? "" : "-> ",
                      blamePath[i].c_str());
    out += strfmt("Critical: %s\n",
                  critical.empty() ? "(no verdict)" : critical.c_str());
    return out;
}

} // namespace plast
