/**
 * @file
 * The per-run manifest: one schema-stable JSON record describing a
 * complete Runner execution — what ran (PIR hash, architecture hash,
 * mapped-config hash, seed), how it ran (scheduler mode, datapath
 * engine), how compilation went (CompileDiagnostics summary), how the
 * run ended (typed outcome), what it measured (metric snapshot) and
 * where the host time went (phase timings from HostProfiler).
 *
 * This is the structured run record the compile-and-serve daemon
 * (ROADMAP) will queue, cache-key and serve: (pirHash, archHash) is
 * the content address of a compiled config, and the manifest is the
 * receipt a job returns. Key order is fixed (tested by a golden in
 * tests/test_telemetry.cpp); add new keys, never reorder or rename.
 *
 * Hashes use FNV-1a over canonical text serializations (pir/serialize
 * for programs, arch/cfgio for configs, archParamsText for params) so
 * they are stable across platforms and standard-library versions —
 * unlike std::hash, which the checkpoint guard can use because
 * checkpoints never cross processes.
 */

#ifndef PLAST_RUNTIME_MANIFEST_HPP
#define PLAST_RUNTIME_MANIFEST_HPP

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

#include "arch/params.hpp"

namespace plast
{

/** FNV-1a 64-bit over bytes; platform-stable (unlike std::hash). */
uint64_t fnv1a64(const std::string &text);

/** Every ArchParams field in a fixed line-oriented text form (the
 *  hashing pre-image for RunManifest::archHash; also a readable dump —
 *  describe() is for humans and omits fields). */
std::string archParamsText(const ArchParams &params);

struct RunManifest
{
    static constexpr const char *kSchema = "plast.run-manifest.v1";

    // ---- identity ----------------------------------------------------
    std::string program;     ///< PIR program name
    uint64_t pirHash = 0;    ///< fnv1a64(programToText(prog))
    uint64_t archHash = 0;   ///< fnv1a64(archParamsText(params))
    uint64_t configHash = 0; ///< fnv1a64(configToText(mapped)); 0 until compiled
    uint64_t seed = 0;       ///< caller-supplied (fuzz / campaign); 0 = none
    std::string schedMode;   ///< "activity" | "dense"
    std::string simMode;     ///< "interp" | "specialized"
    std::string arch;        ///< ArchParams::describe() (human context)

    // ---- compile summary (CompileDiagnostics) ------------------------
    bool compiled = false;
    std::string binding;            ///< blocking resource ("" when mapped)
    uint32_t placementAttempts = 0;
    uint32_t routeRounds = 0;
    uint64_t routedHops = 0;
    uint32_t spills = 0;

    // ---- outcome -----------------------------------------------------
    std::string outcome; ///< statusCodeName of the final status
    std::string detail;  ///< status message ("" when ok)
    uint64_t cycles = 0;

    // ---- measurements ------------------------------------------------
    /** Host wall-clock per phase (HostProfiler totals at harvest). */
    std::map<std::string, uint64_t> timingsUs;
    /** Flat counter snapshot (Fabric::dumpStats et al.). */
    std::map<std::string, uint64_t> metrics;

    /** Stable-schema JSON: fixed top-level key order, sorted maps. */
    void writeJson(std::ostream &os) const;
};

} // namespace plast

#endif // PLAST_RUNTIME_MANIFEST_HPP
