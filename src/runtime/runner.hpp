/**
 * @file
 * Host-side runtime: compiles a PIR program, loads input arrays into
 * the accelerator's DRAM image, runs the cycle simulator to completion
 * and returns results plus performance statistics. The runner can also
 * execute the reference evaluator on the same inputs and check that
 * the fabric produced bit-identical results.
 */

#ifndef PLAST_RUNTIME_RUNNER_HPP
#define PLAST_RUNTIME_RUNNER_HPP

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "base/stats.hpp"
#include "compiler/mapper.hpp"
#include "pir/eval.hpp"
#include "pir/ir.hpp"
#include "runtime/manifest.hpp"
#include "sim/fabric.hpp"

namespace plast
{

class Runner
{
  public:
    explicit Runner(pir::Program prog,
                    ArchParams params = ArchParams::plasticineFinal(),
                    SimOptions simOpts = {});

    /** Host-visible input/output staging for a DRAM buffer. */
    std::vector<Word> &dram(pir::MemId id);

    const compiler::MappingReport &report() const
    {
        return mapResult().report;
    }
    const pir::Program &program() const { return prog_; }

    struct Result
    {
        Cycles cycles = 0;
        StatSet stats;
        std::vector<std::deque<Word>> argOuts;
    };

    /** Compile (once) and run the cycle simulator. */
    Result run(Cycles maxCycles = 500'000'000);

    // ---- non-fatal variants ------------------------------------------
    // The fatal APIs above remain for tests and tools where dying with
    // a message is the right behavior; the try* family returns a typed
    // Status instead so callers (fault campaigns, fuzzers, recovery)
    // can observe compile errors, deadlocks, watchdog/livelock trips,
    // uncorrectable ECC errors and validation mismatches as data.

    /** Compile (once); kCompileError instead of fatal on failure. */
    Status tryCompile();
    /** Compile + run; failures come back as a Status. `out` carries
     *  stats and partial argOuts even when the run failed. */
    Status tryRun(Result &out, Cycles maxCycles = 500'000'000);
    /** tryRun plus bit-exact comparison against the reference
     *  evaluator; a divergence is kMismatch. */
    Status tryRunValidated(Result &out, Cycles maxCycles = 500'000'000);
    /** Compare a fabric result with a finished reference evaluation
     *  (argOut streams and output DRAM buffers, bit for bit). */
    Status compareWithReference(const pir::Evaluator &ev,
                                const Result &res) const;

    /** Run the reference evaluator on the same inputs. */
    pir::Evaluator runReference() const;

    /**
     * Run both fabric and reference; fatal unless every argOut stream
     * and every output DRAM buffer matches bit for bit. Returns the
     * fabric result.
     */
    Result runValidated(Cycles maxCycles = 500'000'000);

    /**
     * The structured record of a finished (or failed) run: identity
     * hashes, modes, compile summary, outcome, phase timings and the
     * metric snapshot (runtime/manifest.hpp). `st` is the run's final
     * status — pass the Status a try* call returned, or default-ok
     * after a fatal-API run() that returned. Callable after tryCompile
     * alone (cycles 0, metrics empty) to record compile outcomes.
     */
    RunManifest buildManifest(const Result &res, Status st = Status()) const;
    /** buildManifest + schema-stable JSON emission. */
    void writeManifest(std::ostream &os, const Result &res,
                       Status st = Status()) const;

    /** DRAM contents after run() (by buffer). */
    std::vector<Word> readDram(pir::MemId id) const;

    /** Reference-side instrumentation (for the analytical models). */
    const pir::Evaluator::Counts &referenceCounts();

    /** The simulated fabric, alive after run() — null before the first
     *  run. Exposes the trace sink, utilization epochs and per-unit
     *  cycle ledgers for post-run analysis. */
    const Fabric *fabric() const { return fabric_.get(); }

    /** Select the datapath engine (interpreted or specialized plans)
     *  for fabrics this runner builds. Must be called before the first
     *  run; both engines are bit-exact (see DESIGN.md §13). */
    void setSimMode(SimMode mode);

    // ---- compiled-config sharing (the serve daemon's config cache) ---
    /** The frozen compile result, shareable across runners without
     *  copying the FabricConfig. Null until tryCompile succeeded. */
    std::shared_ptr<const compiler::MapResult> sharedMapResult() const
    {
        return shared_;
    }
    /**
     * Skip compilation entirely and reuse a compile result produced by
     * another runner for the *same* (program, ArchParams) pair — this
     * is how a config-cache hit avoids paying place-and-route twice.
     * Must be called before the first compile; incompatible with
     * setConfigTweak/setUnitMask/setCompileOptions (those exist to
     * perturb a fresh compile). The caller owns the content-address
     * discipline: adopting a result compiled from a different program
     * is undefined behavior by construction.
     */
    void adoptCompiled(std::shared_ptr<const compiler::MapResult> map);

    /**
     * Install a hook that mutates the compiled FabricConfig before the
     * fabric is instantiated. Used by the fuzz harness to inject
     * hardware faults (e.g. flipping a reduction-stage opcode) and by
     * tests that want to probe specific mis-configurations. Must be
     * called before the first run.
     */
    void setConfigTweak(std::function<void(FabricConfig &)> tweak);

    // ---- resilience plumbing -----------------------------------------
    /** Compile with faulted physical units masked out of placement.
     *  Must be called before compilation. */
    void setUnitMask(compiler::UnitMask mask);
    /** Compile-pipeline knobs (router mode, restart / spill budgets).
     *  Must be called before compilation. */
    void setCompileOptions(compiler::CompileOptions opts);
    /** Fault injector armed on every fabric the runner builds (and
     *  installed as the DRAM fault hook). */
    void setFaultInjector(resilience::FaultInjector *inj);
    /** Cooperative cancellation token armed on every fabric the runner
     *  builds: tryRun returns kCancelled / kDeadlineExceeded when it
     *  fires mid-simulation (partial stats and argOuts are still
     *  harvested for post-mortems). */
    void setCancelToken(const CancelToken *tok);
    /** The full compile result (placement, DRAM layout). After a
     *  failed compile this still carries the diagnostics. */
    const compiler::MapResult &mapResult() const
    {
        return shared_ ? *shared_ : map_;
    }
    /** Staged host input buffers (reusable across runners, e.g. when
     *  recovery recompiles onto a degraded fabric). */
    const std::map<pir::MemId, std::vector<Word>> &hostBuffers() const
    {
        return host_;
    }
    void setHostBuffers(std::map<pir::MemId, std::vector<Word>> bufs)
    {
        host_ = std::move(bufs);
    }
    /** Mutable fabric access for checkpoint/rollback orchestration. */
    Fabric *mutableFabric() { return fabric_.get(); }
    /** Harvest stats and argOuts from the finished (or failed) run —
     *  public so recovery can re-harvest after a direct rollback. */
    void collectResult(Result &out) const;

  private:
    void ensureCompiled();
    /** Instantiate the fabric and load the DRAM image. */
    void buildFabric();

    pir::Program prog_;
    ArchParams params_;
    SimOptions simOpts_;
    bool compiled_ = false;
    compiler::UnitMask mask_;
    compiler::CompileOptions copts_;
    resilience::FaultInjector *injector_ = nullptr;
    const CancelToken *cancel_ = nullptr;
    /** Failed-compile diagnostics only; successful compiles freeze
     *  into shared_ (shareable via the serve config cache). */
    compiler::MapResult map_;
    std::shared_ptr<const compiler::MapResult> shared_;
    /** Host-profiler window of this runner's own phases: the thread
     *  that constructed it and spans recorded since construction —
     *  keeps per-job manifest timings honest when many runners share
     *  one process (the serve worker pool). */
    uint32_t profTid_ = 0;
    uint64_t profSinceUs_ = 0;
    std::map<pir::MemId, std::vector<Word>> host_;
    std::unique_ptr<Fabric> fabric_;
    bool haveCounts_ = false;
    pir::Evaluator::Counts counts_;
    std::function<void(FabricConfig &)> configTweak_;
};

} // namespace plast

#endif // PLAST_RUNTIME_RUNNER_HPP
