/**
 * @file
 * Host-side runtime: compiles a PIR program, loads input arrays into
 * the accelerator's DRAM image, runs the cycle simulator to completion
 * and returns results plus performance statistics. The runner can also
 * execute the reference evaluator on the same inputs and check that
 * the fabric produced bit-identical results.
 */

#ifndef PLAST_RUNTIME_RUNNER_HPP
#define PLAST_RUNTIME_RUNNER_HPP

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "base/stats.hpp"
#include "compiler/mapper.hpp"
#include "pir/eval.hpp"
#include "pir/ir.hpp"
#include "sim/fabric.hpp"

namespace plast
{

class Runner
{
  public:
    explicit Runner(pir::Program prog,
                    ArchParams params = ArchParams::plasticineFinal(),
                    SimOptions simOpts = {});

    /** Host-visible input/output staging for a DRAM buffer. */
    std::vector<Word> &dram(pir::MemId id);

    const compiler::MappingReport &report() const { return map_.report; }
    const pir::Program &program() const { return prog_; }

    struct Result
    {
        Cycles cycles = 0;
        StatSet stats;
        std::vector<std::deque<Word>> argOuts;
    };

    /** Compile (once) and run the cycle simulator. */
    Result run(Cycles maxCycles = 500'000'000);

    /** Run the reference evaluator on the same inputs. */
    pir::Evaluator runReference() const;

    /**
     * Run both fabric and reference; fatal unless every argOut stream
     * and every output DRAM buffer matches bit for bit. Returns the
     * fabric result.
     */
    Result runValidated(Cycles maxCycles = 500'000'000);

    /** DRAM contents after run() (by buffer). */
    std::vector<Word> readDram(pir::MemId id) const;

    /** Reference-side instrumentation (for the analytical models). */
    const pir::Evaluator::Counts &referenceCounts();

    /** The simulated fabric, alive after run() — null before the first
     *  run. Exposes the trace sink, utilization epochs and per-unit
     *  cycle ledgers for post-run analysis. */
    const Fabric *fabric() const { return fabric_.get(); }

    /**
     * Install a hook that mutates the compiled FabricConfig before the
     * fabric is instantiated. Used by the fuzz harness to inject
     * hardware faults (e.g. flipping a reduction-stage opcode) and by
     * tests that want to probe specific mis-configurations. Must be
     * called before the first run.
     */
    void setConfigTweak(std::function<void(FabricConfig &)> tweak);

  private:
    void ensureCompiled();

    pir::Program prog_;
    ArchParams params_;
    SimOptions simOpts_;
    bool compiled_ = false;
    compiler::MapResult map_;
    std::map<pir::MemId, std::vector<Word>> host_;
    std::unique_ptr<Fabric> fabric_;
    bool haveCounts_ = false;
    pir::Evaluator::Counts counts_;
    std::function<void(FabricConfig &)> configTweak_;
};

} // namespace plast

#endif // PLAST_RUNTIME_RUNNER_HPP
