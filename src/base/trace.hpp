/**
 * @file
 * Low-overhead event-trace sink for the cycle simulator.
 *
 * Components emit three record kinds into a fixed-capacity ring buffer
 * (oldest records are overwritten once the ring is full, with a drop
 * count):
 *
 *   span     a [begin, end) interval on a track (unit runs); spans on
 *            one track never overlap, so viewers nest them by
 *            containment;
 *   async    an interval that may overlap others on the same track
 *            (in-flight wavefronts, outstanding DRAM commands/bursts),
 *            keyed by an id;
 *   instant  a point event (token handshakes, sleep/wake transitions);
 *   counter  a sampled value (FIFO occupancy, scheduler active set).
 *
 * Records are 32-byte PODs with table-indexed names, so an emission is
 * a bounds check and a struct store. The whole facility compiles away
 * when PLAST_TRACING is 0: the emit helpers become empty inlines and
 * no sink is ever constructed.
 *
 * The ring exports Chrome trace-event JSON ("X"/"b"/"e"/"i"/"C"
 * phases, one thread per track), which Perfetto and chrome://tracing
 * load directly; the cycle number is written as the microsecond
 * timestamp, so 1 displayed us == 1 fabric cycle.
 */

#ifndef PLAST_BASE_TRACE_HPP
#define PLAST_BASE_TRACE_HPP

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "base/types.hpp"

#ifndef PLAST_TRACING
#define PLAST_TRACING 1
#endif

namespace plast
{

class HostProfiler;

/** Compile-time switch; runtime code gates sink creation on this. */
inline constexpr bool kTracingCompiled = PLAST_TRACING != 0;

/** Fixed event-name table (no per-event string handling). */
enum class TraceName : uint16_t
{
    kRun,       ///< one execution run of a unit (token to done)
    kWavefront, ///< one wavefront's flight through a PCU pipeline
    kIteration, ///< an outer-loop iteration issued by a control box
    kDramCmd,   ///< an AG command outstanding at the memory system
    kBurst,     ///< a DRAM burst from coalescer issue to completion
    kTokens,    ///< control tokens consumed to start a run
    kDone,      ///< done tokens pushed at run completion
    kSleep,     ///< scheduler dropped the unit from the active set
    kWake,      ///< scheduler re-armed the unit
    kOccupancy, ///< stream receiver-FIFO + in-flight occupancy
    kActiveSet, ///< scheduler active-set size
    kOutstanding, ///< coalescing-unit outstanding bursts
    kCount,
};

const char *traceNameStr(TraceName n);

/** Trace tuning knobs (part of SimOptions). */
struct TraceOptions
{
    /** Master switch; no sink is created (and no overhead is paid)
     *  when false. */
    bool enabled = false;
    /** Ring capacity in events (32 B each). */
    size_t capacity = 1u << 20;
    /** Utilization time-series sampling period in cycles (0 = off). */
    uint32_t epochCycles = 1024;
    /** Emit per-stream occupancy counter tracks. */
    bool streams = true;
};

class TraceSink
{
  public:
    enum class Kind : uint8_t
    {
        kSpan,    ///< complete "X" event: [ts, ts+dur)
        kAsync,   ///< overlapping "b"/"e" pair keyed by `aux2` id
        kInstant, ///< "i" event at ts
        kCounter, ///< "C" event: value `aux` at ts
    };

    struct Event
    {
        Cycles ts = 0;
        uint64_t aux = 0;  ///< span/async: duration; counter: value
        uint64_t aux2 = 0; ///< async: interval id
        uint16_t track = 0;
        TraceName name = TraceName::kRun;
        Kind kind = Kind::kInstant;
    };

    explicit TraceSink(size_t capacity);

    /** Register a display track (a unit, stream, or subsystem). */
    uint16_t addTrack(const std::string &name);
    const std::vector<std::string> &tracks() const { return tracks_; }

    void
    span(uint16_t track, TraceName name, Cycles begin, Cycles end)
    {
        push({begin, end - begin, 0, track, name, Kind::kSpan});
    }

    void
    async(uint16_t track, TraceName name, Cycles begin, Cycles end,
          uint64_t id)
    {
        push({begin, end - begin, id, track, name, Kind::kAsync});
    }

    void
    instant(uint16_t track, TraceName name, Cycles ts)
    {
        push({ts, 0, 0, track, name, Kind::kInstant});
    }

    void
    counter(uint16_t track, TraceName name, Cycles ts, uint64_t value)
    {
        push({ts, value, 0, track, name, Kind::kCounter});
    }

    /** Events currently held (<= capacity). */
    size_t size() const;
    size_t capacity() const { return cap_; }
    /** Events overwritten after the ring filled. */
    uint64_t dropped() const { return dropped_; }

    /** Visit retained events oldest first. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        size_t n = size();
        size_t start = wrapped_ ? next_ : 0;
        for (size_t i = 0; i < n; ++i)
            fn(buf_[(start + i) % cap_]);
    }

    /** Chrome trace-event JSON (Perfetto / chrome://tracing). The
     *  simulated-cycle events render as process 1; when `host` is
     *  non-null its wall-clock phase spans are appended as process 2,
     *  giving one timeline with both time bases side by side. */
    void writeChromeJson(std::ostream &os,
                         const HostProfiler *host = nullptr) const;

  private:
    void
    push(const Event &e)
    {
        if (buf_.size() < cap_) {
            buf_.push_back(e);
        } else {
            buf_[next_] = e;
            wrapped_ = true;
            ++dropped_;
        }
        next_ = (next_ + 1) % cap_;
    }

    size_t cap_;
    std::vector<Event> buf_;
    size_t next_ = 0;
    bool wrapped_ = false;
    uint64_t dropped_ = 0;
    std::vector<std::string> tracks_;
};

// ---- emit helpers --------------------------------------------------
// All instrumentation sites go through these; with PLAST_TRACING=0 the
// calls are empty inlines and vanish entirely.

#if PLAST_TRACING

inline void
traceSpan(TraceSink *s, uint16_t track, TraceName n, Cycles b, Cycles e)
{
    if (s)
        s->span(track, n, b, e);
}

inline void
traceAsync(TraceSink *s, uint16_t track, TraceName n, Cycles b, Cycles e,
           uint64_t id)
{
    if (s)
        s->async(track, n, b, e, id);
}

inline void
traceInstant(TraceSink *s, uint16_t track, TraceName n, Cycles ts)
{
    if (s)
        s->instant(track, n, ts);
}

inline void
traceCounter(TraceSink *s, uint16_t track, TraceName n, Cycles ts,
             uint64_t value)
{
    if (s)
        s->counter(track, n, ts, value);
}

#else

inline void traceSpan(TraceSink *, uint16_t, TraceName, Cycles, Cycles) {}
inline void
traceAsync(TraceSink *, uint16_t, TraceName, Cycles, Cycles, uint64_t)
{
}
inline void traceInstant(TraceSink *, uint16_t, TraceName, Cycles) {}
inline void traceCounter(TraceSink *, uint16_t, TraceName, Cycles, uint64_t)
{
}

#endif // PLAST_TRACING

} // namespace plast

#endif // PLAST_BASE_TRACE_HPP
