/**
 * @file
 * Growable power-of-two ring buffer with deque-like front/back
 * semantics. Streams and other bounded per-cycle queues use it instead
 * of std::deque: occupancy is bounded (stream backpressure), so after
 * warm-up a ring never allocates — std::deque's chunk churn was a
 * measurable slice of the per-cycle simulation cost.
 */

#ifndef PLAST_BASE_RING_HPP
#define PLAST_BASE_RING_HPP

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "base/stateio.hpp"

namespace plast
{

template <typename T>
class Ring
{
  public:
    bool empty() const { return count_ == 0; }
    size_t size() const { return count_; }

    T &front() { return buf_[head_]; }
    const T &front() const { return buf_[head_]; }
    T &back() { return buf_[wrap(head_ + count_ - 1)]; }
    const T &back() const { return buf_[wrap(head_ + count_ - 1)]; }

    /** i counts from the front, deque-style. */
    T &operator[](size_t i) { return buf_[wrap(head_ + i)]; }
    const T &operator[](size_t i) const { return buf_[wrap(head_ + i)]; }

    void
    push_back(const T &v)
    {
        reserveOne();
        buf_[wrap(head_ + count_)] = v;
        ++count_;
    }

    void
    push_back(T &&v)
    {
        reserveOne();
        buf_[wrap(head_ + count_)] = std::move(v);
        ++count_;
    }

    void
    pop_front()
    {
        head_ = wrap(head_ + 1);
        --count_;
    }

    void
    clear()
    {
        head_ = 0;
        count_ = 0;
    }

    /** Restore-path helper: size the ring, default-filled. */
    void
    resize(size_t n)
    {
        if (n > count_) {
            while (buf_.size() < roundUp(n))
                growStorage();
            for (size_t i = count_; i < n; ++i)
                buf_[wrap(head_ + i)] = T{};
        }
        count_ = n;
    }

    // Range-for support (front-to-back order).
    template <typename RingT, typename ValT>
    struct Iter
    {
        RingT *r;
        size_t i;
        ValT &operator*() const { return (*r)[i]; }
        Iter &
        operator++()
        {
            ++i;
            return *this;
        }
        bool operator!=(const Iter &o) const { return i != o.i; }
    };
    auto begin() { return Iter<Ring, T>{this, 0}; }
    auto end() { return Iter<Ring, T>{this, count_}; }
    auto begin() const { return Iter<const Ring, const T>{this, 0}; }
    auto end() const { return Iter<const Ring, const T>{this, count_}; }

  private:
    static size_t
    roundUp(size_t n)
    {
        size_t p = 8;
        while (p < n)
            p <<= 1;
        return p;
    }

    size_t wrap(size_t i) const { return i & (buf_.size() - 1); }

    void
    reserveOne()
    {
        if (buf_.empty() || count_ == buf_.size())
            growStorage();
    }

    /** Double the storage, unrolling the ring to the front. */
    void
    growStorage()
    {
        size_t ncap = buf_.empty() ? 8 : buf_.size() * 2;
        std::vector<T> nbuf(ncap);
        for (size_t i = 0; i < count_; ++i)
            nbuf[i] = std::move((*this)[i]);
        buf_ = std::move(nbuf);
        head_ = 0;
    }

    std::vector<T> buf_;
    size_t head_ = 0;
    size_t count_ = 0;
};

/** Tape format matches std::deque's: size, then elements in order. */
template <class Ar, class T>
void
io(Ar &ar, Ring<T> &r)
{
    uint64_t n = r.size();
    io(ar, n);
    if constexpr (!Ar::kSaving) {
        r.clear();
        r.resize(n);
    }
    for (size_t i = 0; i < n; ++i)
        io(ar, r[i]);
}

} // namespace plast

#endif // PLAST_BASE_RING_HPP
