#include "base/logging.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace plast
{

namespace
{
// Atomic: the serve daemon's workers consult the flag while a test
// harness (or the daemon's own quiet mode) may flip it concurrently.
std::atomic<bool> gVerbose{true};
} // namespace

void
setVerbose(bool verbose)
{
    gVerbose.store(verbose, std::memory_order_relaxed);
}

bool
verbose()
{
    return gVerbose.load(std::memory_order_relaxed);
}

std::string
vstrfmt(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    if (n < 0) {
        va_end(ap2);
        return std::string(fmt);
    }
    std::string out(static_cast<size_t>(n), '\0');
    std::vsnprintf(out.data(), static_cast<size_t>(n) + 1, fmt, ap2);
    va_end(ap2);
    return out;
}

std::string
strfmt(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string out = vstrfmt(fmt, ap);
    va_end(ap);
    return out;
}

namespace detail
{

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (gVerbose.load(std::memory_order_relaxed))
        std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace plast
