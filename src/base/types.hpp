/**
 * @file
 * Fundamental simulator-wide types: machine words, addresses, cycles, and
 * the SIMD vector that flows through the Plasticine fabric.
 */

#ifndef PLAST_BASE_TYPES_HPP
#define PLAST_BASE_TYPES_HPP

#include <array>
#include <cstdint>
#include <cstring>

namespace plast
{

/** A 32-bit machine word; interpretation (int/float) is per-operation. */
using Word = uint32_t;

/** Byte address into the accelerator's DRAM address space. */
using Addr = uint64_t;

/** Fabric clock cycle count (1 GHz fabric clock). */
using Cycles = uint64_t;

/** Bytes per word and per DRAM burst (64 B = one 16-lane vector). */
constexpr uint32_t kWordBytes = 4;
constexpr uint32_t kBurstBytes = 64;

/** Hard upper bound on SIMD lanes (Table 3 sweeps 4..32). */
constexpr uint32_t kMaxLanes = 32;

/** Reinterpret a word as IEEE-754 single-precision float. */
inline float
wordToFloat(Word w)
{
    float f;
    std::memcpy(&f, &w, sizeof(f));
    return f;
}

/** Reinterpret a float as a 32-bit word. */
inline Word
floatToWord(float f)
{
    Word w;
    std::memcpy(&w, &f, sizeof(w));
    return w;
}

inline int32_t
wordToInt(Word w)
{
    int32_t v;
    std::memcpy(&v, &w, sizeof(v));
    return v;
}

inline Word
intToWord(int32_t v)
{
    Word w;
    std::memcpy(&w, &v, sizeof(w));
    return w;
}

/**
 * A SIMD vector travelling on the vector network or through a PCU
 * pipeline: up to kMaxLanes words plus a per-lane valid mask (the mask
 * carries FlatMap/filter validity).
 */
struct Vec
{
    std::array<Word, kMaxLanes> lane{};
    uint32_t mask = 0;

    static Vec
    broadcast(Word w, uint32_t lanes)
    {
        Vec v;
        for (uint32_t i = 0; i < lanes; ++i)
            v.lane[i] = w;
        v.mask = lanes >= 32 ? 0xffffffffu : ((1u << lanes) - 1);
        return v;
    }

    bool valid(uint32_t i) const { return (mask >> i) & 1u; }
    void setValid(uint32_t i) { mask |= (1u << i); }
    void clearValid(uint32_t i) { mask &= ~(1u << i); }
    uint32_t popcount() const { return __builtin_popcount(mask); }
};

} // namespace plast

#endif // PLAST_BASE_TYPES_HPP
