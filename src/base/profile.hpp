/**
 * @file
 * Host-side wall-clock phase profiling. The cycle-level trace
 * (trace.hpp) answers "where did the *simulated* time go"; this layer
 * answers "where did the *host* time go" — compile, place-and-route,
 * plan-build, input loading, the run loop, checkpoints — so one
 * Perfetto timeline can interleave host phases with simulated-cycle
 * events (host spans render as a second process, see
 * writeHostSpansJson).
 *
 * Usage is RAII:
 *
 *     { ScopedSpan span("compile.route"); routeAll(); }
 *
 * Spans nest naturally (Perfetto renders containment); names are
 * static dotted phase labels, not dynamic strings. The profiler is a
 * process-wide singleton, enabled by default; recording a span is two
 * steady_clock reads and one mutex-guarded vector push, so per-phase
 * (not per-cycle) instrumentation is far below measurement noise.
 * Phase totals feed RunManifest timings (runtime/manifest.hpp).
 *
 * Concurrency: the profiler is shared by every thread in the process
 * (the serve daemon runs one Runner per worker thread). Each span
 * records the small dense id of the thread that produced it
 * (currentTid), so concurrent runners interleave without corrupting
 * each other's nesting: writeHostSpansJson renders each thread as its
 * own named Perfetto track, and totalsUs(tid, sinceUs) carves out one
 * job's phases from the shared timeline. The enable flag is atomic
 * and the sink is mutex-guarded; record() is safe from any thread.
 */

#ifndef PLAST_BASE_PROFILE_HPP
#define PLAST_BASE_PROFILE_HPP

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace plast
{

class HostProfiler
{
  public:
    struct Span
    {
        const char *name; ///< static phase label ("compile.route")
        uint32_t tid;     ///< dense id of the recording thread
        uint64_t beginUs; ///< wall-clock us since profiler epoch
        uint64_t endUs;
    };

    static HostProfiler &instance();

    /** Microseconds since the profiler epoch (process start). */
    uint64_t nowUs() const;

    /** Dense id of the calling thread (0 for the first thread that
     *  ever records; each new thread gets the next integer). Stable
     *  for the thread's lifetime. */
    static uint32_t currentTid();

    bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
    void setEnabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

    void record(const char *name, uint64_t beginUs, uint64_t endUs);

    /** Snapshot of all recorded spans (chronological by end time per
     *  thread; threads interleave). */
    std::vector<Span> spans() const;

    /** Wall-clock total per phase name, in microseconds, over every
     *  thread. Nested spans are counted under their own name only (no
     *  double attribution of a child into its parent's key). */
    std::map<std::string, uint64_t> totalsUs() const;

    /** Per-thread, windowed totals: only spans recorded by `tid` that
     *  began at or after `sinceUs` count. This is what a per-job
     *  manifest wants when many jobs share the process profiler — the
     *  worker's own phases since the job started, nothing from
     *  neighboring workers. */
    std::map<std::string, uint64_t> totalsUs(uint32_t tid,
                                             uint64_t sinceUs) const;

    /** Drop all recorded spans (a new run's profile starts clean). */
    void clear();

    /** Spans discarded after the retention cap filled (long fuzz or
     *  campaign processes; phase spans are coarse, so hitting the cap
     *  means millions of runs, not a hot loop). */
    uint64_t dropped() const;

  private:
    HostProfiler();

    static constexpr size_t kMaxSpans = 1u << 20;

    mutable std::mutex mu_;
    std::vector<Span> spans_;
    uint64_t dropped_ = 0;
    uint64_t epochNs_ = 0;
    std::atomic<bool> enabled_{true};
};

/** RAII span: records [construction, destruction) into the global
 *  profiler. `name` must outlive the profiler (use string literals). */
class ScopedSpan
{
  public:
    explicit ScopedSpan(const char *name)
        : name_(name), prof_(HostProfiler::instance())
    {
        if (prof_.enabled())
            begin_ = prof_.nowUs();
    }

    ~ScopedSpan()
    {
        if (prof_.enabled())
            prof_.record(name_, begin_, prof_.nowUs());
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    const char *name_;
    HostProfiler &prof_;
    uint64_t begin_ = 0;
};

/**
 * Emit the profiler's spans as Chrome trace-event JSON fragments
 * (ph "X" complete events) on process id 2 ("host"), one thread track
 * per recording thread, each span preceded by ",\n". Callers splice
 * this into a traceEvents array that already holds at least one event
 * (TraceSink emits the simulated-cycle events as pid 1). Timestamps
 * are wall-clock microseconds since the profiler epoch — a different
 * time base from the cycle events, shared only for side-by-side
 * display.
 */
void writeHostSpansJson(std::ostream &os, const HostProfiler &prof);

} // namespace plast

#endif // PLAST_BASE_PROFILE_HPP
