/**
 * @file
 * Host-side wall-clock phase profiling. The cycle-level trace
 * (trace.hpp) answers "where did the *simulated* time go"; this layer
 * answers "where did the *host* time go" — compile, place-and-route,
 * plan-build, input loading, the run loop, checkpoints — so one
 * Perfetto timeline can interleave host phases with simulated-cycle
 * events (host spans render as a second process, see
 * writeHostSpansJson).
 *
 * Usage is RAII:
 *
 *     { ScopedSpan span("compile.route"); routeAll(); }
 *
 * Spans nest naturally (Perfetto renders containment); names are
 * static dotted phase labels, not dynamic strings. The profiler is a
 * process-wide singleton, enabled by default; recording a span is two
 * steady_clock reads and one mutex-guarded vector push, so per-phase
 * (not per-cycle) instrumentation is far below measurement noise.
 * Phase totals feed RunManifest timings (runtime/manifest.hpp).
 */

#ifndef PLAST_BASE_PROFILE_HPP
#define PLAST_BASE_PROFILE_HPP

#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace plast
{

class HostProfiler
{
  public:
    struct Span
    {
        const char *name; ///< static phase label ("compile.route")
        uint64_t beginUs; ///< wall-clock us since profiler epoch
        uint64_t endUs;
    };

    static HostProfiler &instance();

    /** Microseconds since the profiler epoch (process start). */
    uint64_t nowUs() const;

    bool enabled() const { return enabled_; }
    void setEnabled(bool on) { enabled_ = on; }

    void record(const char *name, uint64_t beginUs, uint64_t endUs);

    /** Snapshot of all recorded spans (chronological by end time). */
    std::vector<Span> spans() const;

    /** Wall-clock total per phase name, in microseconds. Nested spans
     *  are counted under their own name only (no double attribution
     *  of a child into its parent's key). */
    std::map<std::string, uint64_t> totalsUs() const;

    /** Drop all recorded spans (a new run's profile starts clean). */
    void clear();

    /** Spans discarded after the retention cap filled (long fuzz or
     *  campaign processes; phase spans are coarse, so hitting the cap
     *  means millions of runs, not a hot loop). */
    uint64_t dropped() const;

  private:
    HostProfiler();

    static constexpr size_t kMaxSpans = 1u << 20;

    mutable std::mutex mu_;
    std::vector<Span> spans_;
    uint64_t dropped_ = 0;
    uint64_t epochNs_ = 0;
    bool enabled_ = true;
};

/** RAII span: records [construction, destruction) into the global
 *  profiler. `name` must outlive the profiler (use string literals). */
class ScopedSpan
{
  public:
    explicit ScopedSpan(const char *name)
        : name_(name), prof_(HostProfiler::instance())
    {
        if (prof_.enabled())
            begin_ = prof_.nowUs();
    }

    ~ScopedSpan()
    {
        if (prof_.enabled())
            prof_.record(name_, begin_, prof_.nowUs());
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    const char *name_;
    HostProfiler &prof_;
    uint64_t begin_ = 0;
};

/**
 * Emit the profiler's spans as Chrome trace-event JSON fragments
 * (ph "X" complete events) on process id 2 ("host"), one per span,
 * each preceded by ",\n". Callers splice this into a traceEvents
 * array that already holds at least one event (TraceSink emits the
 * simulated-cycle events as pid 1). Timestamps are wall-clock
 * microseconds since the profiler epoch — a different time base from
 * the cycle events, shared only for side-by-side display.
 */
void writeHostSpansJson(std::ostream &os, const HostProfiler &prof);

} // namespace plast

#endif // PLAST_BASE_PROFILE_HPP
