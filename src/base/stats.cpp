#include "base/stats.hpp"

namespace plast
{

uint64_t
StatSet::sumPrefix(const std::string &prefix) const
{
    uint64_t total = 0;
    for (auto it = counters_.lower_bound(prefix); it != counters_.end();
         ++it) {
        if (it->first.compare(0, prefix.size(), prefix) != 0)
            break;
        total += it->second;
    }
    return total;
}

void
StatSet::dump(std::ostream &os) const
{
    for (const auto &[name, value] : counters_)
        os << name << " = " << value << "\n";
}

void
StatSet::dumpJson(std::ostream &os) const
{
    // Counter names are dotted identifiers (no characters needing
    // escapes), so keys can be emitted verbatim.
    os << "{";
    bool first = true;
    for (const auto &[name, value] : counters_) {
        os << (first ? "\n" : ",\n") << "  \"" << name << "\": " << value;
        first = false;
    }
    os << "\n}\n";
}

} // namespace plast
