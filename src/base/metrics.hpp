/**
 * @file
 * The unified telemetry metric model. StatSet (stats.hpp) remains the
 * low-overhead per-run counter sink the simulator fills; MetricRegistry
 * is the layer above it: a typed registry of counters, gauges and
 * fixed-bucket histograms with two stable expositions (flat JSON and
 * Prometheus-style text) that every tool — bench drivers, trace_app,
 * run manifests, the future serve daemon — reports through.
 *
 * Semantics (tested in tests/test_telemetry.cpp):
 *
 *   counter    monotonically increasing uint64; increments wrap modulo
 *              2^64 (unsigned arithmetic, never UB);
 *   gauge      a last-written int64 sample;
 *   histogram  fixed ascending bucket upper edges chosen at creation.
 *              observe(v) lands in the FIRST bucket with v <= edge[i]
 *              (a value exactly on an edge belongs to that edge's
 *              bucket); v > edge[last] lands in the overflow bucket.
 *              The text exposition is cumulative ("le" counts), the
 *              JSON exposition per-bucket.
 *
 * Metric names are dotted identifiers ("compile.route.rounds"); the
 * Prometheus exposition rewrites dots to underscores and prefixes
 * "plast_". Registries are cheap value types: a run harvests one,
 * serializes it, and drops it.
 */

#ifndef PLAST_BASE_METRICS_HPP
#define PLAST_BASE_METRICS_HPP

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "base/stats.hpp"

namespace plast
{

class Histogram
{
  public:
    Histogram() = default;
    /** Edges must be strictly ascending; an empty edge list gives a
     *  single overflow bucket (pure count/sum). */
    explicit Histogram(std::vector<uint64_t> edges);

    void observe(uint64_t v);

    uint64_t count() const { return count_; }
    uint64_t sum() const { return sum_; }
    const std::vector<uint64_t> &edges() const { return edges_; }
    /** Per-bucket (non-cumulative) counts; back() is the overflow
     *  bucket (> edges().back()). */
    const std::vector<uint64_t> &buckets() const { return buckets_; }
    /** Cumulative count of observations <= edges()[i]. */
    uint64_t cumulative(size_t i) const;

  private:
    std::vector<uint64_t> edges_;
    std::vector<uint64_t> buckets_; ///< edges_.size() + 1 (overflow)
    uint64_t count_ = 0;
    uint64_t sum_ = 0;
};

class MetricRegistry
{
  public:
    /** Add delta to a counter (created at zero on first use). */
    void
    count(const std::string &name, uint64_t delta = 1)
    {
        counters_[name] += delta; // wraps mod 2^64 by design
    }

    void
    setCounter(const std::string &name, uint64_t value)
    {
        counters_[name] = value;
    }

    /** Record a gauge sample (last write wins). */
    void
    gauge(const std::string &name, int64_t value)
    {
        gauges_[name] = value;
    }

    /** Get-or-create a histogram. Edges are fixed on first creation;
     *  a second call with different edges is a caller bug (fatal). */
    Histogram &histogram(const std::string &name,
                         const std::vector<uint64_t> &edges);

    uint64_t counterValue(const std::string &name) const;
    bool hasCounter(const std::string &name) const
    {
        return counters_.count(name) != 0;
    }
    int64_t gaugeValue(const std::string &name) const;
    const Histogram *findHistogram(const std::string &name) const;

    const std::map<std::string, uint64_t> &counters() const
    {
        return counters_;
    }
    const std::map<std::string, int64_t> &gauges() const
    {
        return gauges_;
    }
    const std::map<std::string, Histogram> &histograms() const
    {
        return histograms_;
    }

    /**
     * Absorb a StatSet dump as counters, each key prefixed with
     * `prefix` (pass e.g. "sim." or "" verbatim). This is the bridge
     * from the simulator's scattered per-run StatSets into the unified
     * model; set() semantics, so importing twice is idempotent.
     */
    void importStats(const StatSet &stats, const std::string &prefix = "");

    /**
     * Flat JSON object, keys sorted (stable schema). Counters and
     * gauges are plain numbers; a histogram at name H appears as
     * "H.bucket.le_<edge>", "H.bucket.overflow", "H.count", "H.sum"
     * (per-bucket counts, not cumulative).
     */
    void writeJson(std::ostream &os) const;

    /** Prometheus text exposition format (# TYPE lines, cumulative
     *  histogram "le" buckets, "+Inf" terminal bucket). */
    void writePrometheus(std::ostream &os) const;

    void
    clear()
    {
        counters_.clear();
        gauges_.clear();
        histograms_.clear();
    }

  private:
    std::map<std::string, uint64_t> counters_;
    std::map<std::string, int64_t> gauges_;
    std::map<std::string, Histogram> histograms_;
};

} // namespace plast

#endif // PLAST_BASE_METRICS_HPP
