/**
 * @file
 * Flat word-tape archives for cycle-exact checkpoint/restore.
 *
 * Architectural state is serialized as a sequence of uint64 words: each
 * component implements `template <class Ar> void serializeState(Ar &)`
 * calling `io(ar, field)` on every piece of mutable state, and the same
 * member function both saves (StateWriter) and restores (StateReader).
 * Symmetry by construction — there is exactly one field list per
 * component, so save and restore cannot drift apart.
 *
 * Only *architectural* state goes on the tape: anything derivable from
 * the FabricConfig (port wiring, stage programs, counter bounds) is
 * rebuilt by constructing a fresh Fabric from the same config and is
 * never serialized.
 */

#ifndef PLAST_BASE_STATEIO_HPP
#define PLAST_BASE_STATEIO_HPP

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "base/types.hpp"

namespace plast
{

/** Appends words to a tape. */
class StateWriter
{
  public:
    static constexpr bool kSaving = true;

    void put(uint64_t w) { tape_.push_back(w); }
    uint64_t get() { return 0; } // never called; keeps io() well-formed

    const std::vector<uint64_t> &tape() const { return tape_; }
    std::vector<uint64_t> takeTape() { return std::move(tape_); }

  private:
    std::vector<uint64_t> tape_;
};

/** Consumes words from a tape; underflow latches `failed`. */
class StateReader
{
  public:
    static constexpr bool kSaving = false;

    explicit StateReader(const std::vector<uint64_t> &tape) : tape_(&tape) {}

    void put(uint64_t) {} // never called; keeps io() well-formed

    uint64_t
    get()
    {
        if (pos_ >= tape_->size())
        {
            failed_ = true;
            return 0;
        }
        return (*tape_)[pos_++];
    }

    bool failed() const { return failed_; }
    /** True when every word was consumed — a structural sanity check. */
    bool exhausted() const { return pos_ == tape_->size() && !failed_; }
    size_t position() const { return pos_; }

  private:
    const std::vector<uint64_t> *tape_;
    size_t pos_ = 0;
    bool failed_ = false;
};

// --------------------------------------------------------------------
// io() overload set. Declaration order matters: the scalar and
// member-hook overloads must precede the container overloads so that
// ordinary (definition-point) lookup inside the latter can see them;
// overloads for plast types are additionally found via ADL.
// --------------------------------------------------------------------

template <class Ar, class T>
    requires(std::is_integral_v<T> || std::is_enum_v<T>)
void
io(Ar &ar, T &v)
{
    if constexpr (Ar::kSaving)
        ar.put(static_cast<uint64_t>(v));
    else
        v = static_cast<T>(ar.get());
}

template <class Ar, class T>
    requires requires(Ar &a, T &x) { x.serializeState(a); }
void
io(Ar &ar, T &v)
{
    v.serializeState(ar);
}

template <class Ar>
void
io(Ar &ar, Vec &v)
{
    for (Word &w : v.lane)
        io(ar, w);
    io(ar, v.mask);
}

template <class Ar, class T, std::size_t N>
void
io(Ar &ar, std::array<T, N> &a)
{
    for (T &e : a)
        io(ar, e);
}

template <class Ar, class T>
void
io(Ar &ar, std::vector<T> &v)
{
    uint64_t n = v.size();
    io(ar, n);
    if constexpr (!Ar::kSaving)
        v.resize(n);
    for (T &e : v)
        io(ar, e);
}

template <class Ar, class T>
void
io(Ar &ar, std::deque<T> &d)
{
    uint64_t n = d.size();
    io(ar, n);
    if constexpr (!Ar::kSaving)
        d.resize(n);
    for (T &e : d)
        io(ar, e);
}

template <class Ar, class T>
void
io(Ar &ar, std::optional<T> &o)
{
    uint64_t has = o.has_value() ? 1 : 0;
    io(ar, has);
    if constexpr (!Ar::kSaving)
    {
        if (has && !o)
            o.emplace();
        else if (!has)
            o.reset();
    }
    if (has)
        io(ar, *o);
}

template <class Ar, class A, class B>
void
io(Ar &ar, std::pair<A, B> &p)
{
    io(ar, p.first);
    io(ar, p.second);
}

template <class Ar, class K, class V>
void
io(Ar &ar, std::map<K, V> &m)
{
    if constexpr (Ar::kSaving)
    {
        uint64_t n = m.size();
        io(ar, n);
        for (auto &kv : m)
        {
            K key = kv.first;
            io(ar, key);
            io(ar, kv.second);
        }
    }
    else
    {
        uint64_t n = 0;
        io(ar, n);
        m.clear();
        for (uint64_t i = 0; i < n; ++i)
        {
            K key{};
            V val{};
            io(ar, key);
            io(ar, val);
            m.emplace(std::move(key), std::move(val));
        }
    }
}

} // namespace plast

#endif // PLAST_BASE_STATEIO_HPP
