#include "base/trace.hpp"

#include "base/logging.hpp"
#include "base/profile.hpp"

namespace plast
{

const char *
traceNameStr(TraceName n)
{
    switch (n) {
      case TraceName::kRun:
        return "run";
      case TraceName::kWavefront:
        return "wavefront";
      case TraceName::kIteration:
        return "iteration";
      case TraceName::kDramCmd:
        return "dram-cmd";
      case TraceName::kBurst:
        return "burst";
      case TraceName::kTokens:
        return "tokens";
      case TraceName::kDone:
        return "done";
      case TraceName::kSleep:
        return "sleep";
      case TraceName::kWake:
        return "wake";
      case TraceName::kOccupancy:
        return "occupancy";
      case TraceName::kActiveSet:
        return "active-set";
      case TraceName::kOutstanding:
        return "outstanding";
      case TraceName::kCount:
        break;
    }
    return "?";
}

TraceSink::TraceSink(size_t capacity) : cap_(capacity == 0 ? 1 : capacity)
{
    buf_.reserve(cap_ < (1u << 16) ? cap_ : (1u << 16));
}

uint16_t
TraceSink::addTrack(const std::string &name)
{
    panic_if(tracks_.size() >= 0xffff, "trace track table overflow");
    tracks_.push_back(name);
    return static_cast<uint16_t>(tracks_.size() - 1);
}

size_t
TraceSink::size() const
{
    return wrapped_ ? cap_ : buf_.size();
}

namespace
{

/** Minimal JSON string escaping (track names are plain ASCII). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out.push_back('\\');
            out.push_back(c);
        } else if (static_cast<unsigned char>(c) < 0x20) {
            out += strfmt("\\u%04x", c);
        } else {
            out.push_back(c);
        }
    }
    return out;
}

} // namespace

void
TraceSink::writeChromeJson(std::ostream &os,
                           const HostProfiler *host) const
{
    os << "{\"traceEvents\":[";
    bool first = true;
    auto sep = [&]() {
        if (!first)
            os << ",";
        first = false;
        os << "\n";
    };

    sep();
    os << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":1,"
          "\"args\":{\"name\":\"fabric (simulated cycles as us)\"}}";

    // Track metadata: one "thread" per track, sorted by track id.
    for (size_t t = 0; t < tracks_.size(); ++t) {
        sep();
        os << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":"
           << t << ",\"args\":{\"name\":\"" << jsonEscape(tracks_[t])
           << "\"}}";
    }

    forEach([&](const Event &e) {
        const char *nm = traceNameStr(e.name);
        switch (e.kind) {
          case Kind::kSpan:
            sep();
            os << "{\"ph\":\"X\",\"name\":\"" << nm
               << "\",\"pid\":1,\"tid\":" << e.track << ",\"ts\":" << e.ts
               << ",\"dur\":" << e.aux << "}";
            break;
          case Kind::kAsync:
            // Async begin/end pair; id scoped per track so concurrent
            // intervals on one track render as parallel lanes.
            sep();
            os << "{\"ph\":\"b\",\"cat\":\"" << nm << "\",\"name\":\""
               << nm << "\",\"pid\":1,\"tid\":" << e.track
               << ",\"id\":" << e.aux2 << ",\"ts\":" << e.ts << "}";
            sep();
            os << "{\"ph\":\"e\",\"cat\":\"" << nm << "\",\"name\":\""
               << nm << "\",\"pid\":1,\"tid\":" << e.track
               << ",\"id\":" << e.aux2 << ",\"ts\":" << (e.ts + e.aux)
               << "}";
            break;
          case Kind::kInstant:
            sep();
            os << "{\"ph\":\"i\",\"name\":\"" << nm
               << "\",\"pid\":1,\"tid\":" << e.track << ",\"ts\":" << e.ts
               << ",\"s\":\"t\"}";
            break;
          case Kind::kCounter:
            sep();
            os << "{\"ph\":\"C\",\"name\":\"" << nm << " #" << e.track
               << "\",\"pid\":1,\"ts\":" << e.ts << ",\"args\":{\"value\":"
               << e.aux << "}}";
            break;
        }
    });

    if (host)
        writeHostSpansJson(os, *host);

    os << "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{"
       << "\"dropped\":" << dropped_ << ",\"tracks\":" << tracks_.size()
       << "}}\n";
}

} // namespace plast
