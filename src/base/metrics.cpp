#include "base/metrics.hpp"

#include <algorithm>

#include "base/logging.hpp"

namespace plast
{

Histogram::Histogram(std::vector<uint64_t> edges)
    : edges_(std::move(edges)), buckets_(edges_.size() + 1, 0)
{
    for (size_t i = 1; i < edges_.size(); ++i)
        panic_if(edges_[i] <= edges_[i - 1],
                 "histogram edges must be strictly ascending");
}

void
Histogram::observe(uint64_t v)
{
    // First bucket with v <= edge[i]; upper_bound on (v - 1) would
    // mishandle v == 0, so use lower_bound: the first edge >= v.
    size_t i = std::lower_bound(edges_.begin(), edges_.end(), v) -
               edges_.begin();
    ++buckets_[i]; // i == edges_.size() is the overflow bucket
    ++count_;
    sum_ += v;
}

uint64_t
Histogram::cumulative(size_t i) const
{
    uint64_t c = 0;
    for (size_t b = 0; b <= i && b < buckets_.size(); ++b)
        c += buckets_[b];
    return c;
}

Histogram &
MetricRegistry::histogram(const std::string &name,
                          const std::vector<uint64_t> &edges)
{
    auto it = histograms_.find(name);
    if (it == histograms_.end())
        it = histograms_.emplace(name, Histogram(edges)).first;
    else
        panic_if(it->second.edges() != edges,
                 "histogram '%s' re-created with different edges",
                 name.c_str());
    return it->second;
}

uint64_t
MetricRegistry::counterValue(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

int64_t
MetricRegistry::gaugeValue(const std::string &name) const
{
    auto it = gauges_.find(name);
    return it == gauges_.end() ? 0 : it->second;
}

const Histogram *
MetricRegistry::findHistogram(const std::string &name) const
{
    auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : &it->second;
}

void
MetricRegistry::importStats(const StatSet &stats,
                            const std::string &prefix)
{
    for (const auto &[name, value] : stats.all())
        counters_[prefix + name] = value;
}

void
MetricRegistry::writeJson(std::ostream &os) const
{
    // One sorted key space: materialize histogram components as flat
    // entries, then merge-emit with counters and gauges. Names are
    // dotted identifiers (no JSON escapes needed).
    std::map<std::string, std::string> flat;
    for (const auto &[name, value] : counters_)
        flat[name] = std::to_string(value);
    for (const auto &[name, value] : gauges_)
        flat[name] = std::to_string(value);
    for (const auto &[name, h] : histograms_) {
        const auto &edges = h.edges();
        const auto &buckets = h.buckets();
        for (size_t i = 0; i < edges.size(); ++i)
            flat[name + ".bucket.le_" + std::to_string(edges[i])] =
                std::to_string(buckets[i]);
        flat[name + ".bucket.overflow"] =
            std::to_string(buckets.back());
        flat[name + ".count"] = std::to_string(h.count());
        flat[name + ".sum"] = std::to_string(h.sum());
    }
    os << "{";
    bool first = true;
    for (const auto &[name, value] : flat) {
        os << (first ? "\n" : ",\n") << "  \"" << name
           << "\": " << value;
        first = false;
    }
    os << "\n}\n";
}

namespace
{

/** Dots (and any other non-identifier char) become underscores. */
std::string
promName(const std::string &name)
{
    std::string out = "plast_";
    for (char c : name) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '_';
        out.push_back(ok ? c : '_');
    }
    return out;
}

} // namespace

void
MetricRegistry::writePrometheus(std::ostream &os) const
{
    for (const auto &[name, value] : counters_) {
        std::string n = promName(name);
        os << "# TYPE " << n << " counter\n" << n << " " << value << "\n";
    }
    for (const auto &[name, value] : gauges_) {
        std::string n = promName(name);
        os << "# TYPE " << n << " gauge\n" << n << " " << value << "\n";
    }
    for (const auto &[name, h] : histograms_) {
        std::string n = promName(name);
        os << "# TYPE " << n << " histogram\n";
        const auto &edges = h.edges();
        for (size_t i = 0; i < edges.size(); ++i) {
            os << n << "_bucket{le=\"" << edges[i] << "\"} "
               << h.cumulative(i) << "\n";
        }
        os << n << "_bucket{le=\"+Inf\"} " << h.count() << "\n";
        os << n << "_sum " << h.sum() << "\n";
        os << n << "_count " << h.count() << "\n";
    }
}

} // namespace plast
