/**
 * @file
 * Typed error propagation for paths that must not kill the process.
 *
 * The simulator's default posture is fail-fast (`panic`/`fatal` in
 * logging.hpp): a mis-configured fabric is a bug and should abort.
 * Fault-injection campaigns invert that contract — a deadlocked run or
 * a rejected placement is a *data point*, not a crash — so the runner
 * and compiler expose `try*` variants returning a Status that callers
 * can record and move past.
 */

#ifndef PLAST_BASE_STATUS_HPP
#define PLAST_BASE_STATUS_HPP

#include <string>
#include <utility>

namespace plast
{

enum class StatusCode
{
    kOk = 0,
    kCompileError,     ///< placement/routing/validation rejected the program
    kValidationError,  ///< fabric output mismatched the reference evaluator
    kDeadlock,         ///< no unit made progress (empty active set)
    kLivelock,         ///< units busy but the root controller never advances
    kWatchdog,         ///< a control watchdog timer expired
    kUncorrectable,    ///< ECC detected a multi-bit error it cannot fix
    kMaxCycles,        ///< cycle budget exhausted before completion
    kMismatch,         ///< generic result divergence (fuzz oracle)
    kInvalidArgument,  ///< caller misuse (bad CLI flag, bad checkpoint)
    kInternal,         ///< invariant violation surfaced non-fatally
    kCancelled,        ///< cooperative cancel honored mid-run
    kDeadlineExceeded, ///< per-job wall-clock deadline passed mid-run
    kShed,             ///< admission control rejected the job (overload)
    kCircuitOpen,      ///< tenant circuit breaker fast-failed the job
    kNotFound,         ///< a lookup (e.g. persistent-store probe) missed
    kCorrupt,          ///< stored record failed validation (torn write,
                       ///< bit rot, version mismatch); quarantined
    kUnavailable,      ///< a backing resource is unusable (store dir
                       ///< inaccessible, lock held); degrade, don't die
};

inline const char *
statusCodeName(StatusCode code)
{
    switch (code)
    {
    case StatusCode::kOk: return "ok";
    case StatusCode::kCompileError: return "compile-error";
    case StatusCode::kValidationError: return "validation-error";
    case StatusCode::kDeadlock: return "deadlock";
    case StatusCode::kLivelock: return "livelock";
    case StatusCode::kWatchdog: return "watchdog";
    case StatusCode::kUncorrectable: return "uncorrectable";
    case StatusCode::kMaxCycles: return "max-cycles";
    case StatusCode::kMismatch: return "mismatch";
    case StatusCode::kInvalidArgument: return "invalid-argument";
    case StatusCode::kInternal: return "internal";
    case StatusCode::kCancelled: return "cancelled";
    case StatusCode::kDeadlineExceeded: return "deadline-exceeded";
    case StatusCode::kShed: return "shed";
    case StatusCode::kCircuitOpen: return "circuit-open";
    case StatusCode::kNotFound: return "not-found";
    case StatusCode::kCorrupt: return "corrupt";
    case StatusCode::kUnavailable: return "unavailable";
    }
    return "unknown";
}

/** Success-or-diagnostic result. Default-constructed == ok. */
class [[nodiscard]] Status
{
  public:
    Status() = default;
    Status(StatusCode code, std::string message)
        : code_(code), message_(std::move(message))
    {
    }

    bool ok() const { return code_ == StatusCode::kOk; }
    StatusCode code() const { return code_; }
    const std::string &message() const { return message_; }

    std::string
    toString() const
    {
        if (ok())
            return "ok";
        return std::string(statusCodeName(code_)) + ": " + message_;
    }

  private:
    StatusCode code_ = StatusCode::kOk;
    std::string message_;
};

} // namespace plast

#endif // PLAST_BASE_STATUS_HPP
