#include "base/profile.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <set>

namespace plast
{

namespace
{

uint64_t
monotonicNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

HostProfiler::HostProfiler() : epochNs_(monotonicNs())
{
    // Kill switch for overhead A/B runs and batch jobs that want zero
    // telemetry: PLAST_HOST_PROFILE=0 disables span recording.
    const char *env = std::getenv("PLAST_HOST_PROFILE");
    if (env && std::strcmp(env, "0") == 0)
        enabled_.store(false, std::memory_order_relaxed);
}

HostProfiler &
HostProfiler::instance()
{
    static HostProfiler prof;
    return prof;
}

uint32_t
HostProfiler::currentTid()
{
    static std::atomic<uint32_t> next{0};
    thread_local uint32_t tid = next.fetch_add(1, std::memory_order_relaxed);
    return tid;
}

uint64_t
HostProfiler::nowUs() const
{
    return (monotonicNs() - epochNs_) / 1000;
}

void
HostProfiler::record(const char *name, uint64_t beginUs, uint64_t endUs)
{
    uint32_t tid = currentTid();
    std::lock_guard<std::mutex> lk(mu_);
    if (spans_.size() >= kMaxSpans) {
        ++dropped_;
        return;
    }
    spans_.push_back({name, tid, beginUs, endUs});
}

uint64_t
HostProfiler::dropped() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return dropped_;
}

std::vector<HostProfiler::Span>
HostProfiler::spans() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return spans_;
}

std::map<std::string, uint64_t>
HostProfiler::totalsUs() const
{
    std::map<std::string, uint64_t> totals;
    std::lock_guard<std::mutex> lk(mu_);
    for (const Span &s : spans_)
        totals[s.name] += s.endUs - s.beginUs;
    return totals;
}

std::map<std::string, uint64_t>
HostProfiler::totalsUs(uint32_t tid, uint64_t sinceUs) const
{
    std::map<std::string, uint64_t> totals;
    std::lock_guard<std::mutex> lk(mu_);
    for (const Span &s : spans_) {
        if (s.tid == tid && s.beginUs >= sinceUs)
            totals[s.name] += s.endUs - s.beginUs;
    }
    return totals;
}

void
HostProfiler::clear()
{
    std::lock_guard<std::mutex> lk(mu_);
    spans_.clear();
    dropped_ = 0;
}

void
writeHostSpansJson(std::ostream &os, const HostProfiler &prof)
{
    os << ",\n{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":2,"
          "\"args\":{\"name\":\"host (wall-clock us)\"}}";
    // One Perfetto thread track per recording thread: concurrent
    // runners (serve workers) keep their span nesting intact instead
    // of interleaving on a single row.
    std::vector<HostProfiler::Span> spans = prof.spans();
    std::set<uint32_t> tids;
    for (const HostProfiler::Span &s : spans)
        tids.insert(s.tid);
    if (tids.empty())
        tids.insert(0);
    for (uint32_t tid : tids) {
        os << ",\n{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":2,"
              "\"tid\":"
           << tid << ",\"args\":{\"name\":\"host phases (thread " << tid
           << ")\"}}";
    }
    for (const HostProfiler::Span &s : spans) {
        os << ",\n{\"ph\":\"X\",\"name\":\"" << s.name
           << "\",\"pid\":2,\"tid\":" << s.tid << ",\"ts\":" << s.beginUs
           << ",\"dur\":" << s.endUs - s.beginUs << "}";
    }
}

} // namespace plast
