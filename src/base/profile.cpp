#include "base/profile.hpp"

#include <chrono>
#include <cstdlib>
#include <cstring>

namespace plast
{

namespace
{

uint64_t
monotonicNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

HostProfiler::HostProfiler() : epochNs_(monotonicNs())
{
    // Kill switch for overhead A/B runs and batch jobs that want zero
    // telemetry: PLAST_HOST_PROFILE=0 disables span recording.
    const char *env = std::getenv("PLAST_HOST_PROFILE");
    if (env && std::strcmp(env, "0") == 0)
        enabled_ = false;
}

HostProfiler &
HostProfiler::instance()
{
    static HostProfiler prof;
    return prof;
}

uint64_t
HostProfiler::nowUs() const
{
    return (monotonicNs() - epochNs_) / 1000;
}

void
HostProfiler::record(const char *name, uint64_t beginUs, uint64_t endUs)
{
    std::lock_guard<std::mutex> lk(mu_);
    if (spans_.size() >= kMaxSpans) {
        ++dropped_;
        return;
    }
    spans_.push_back({name, beginUs, endUs});
}

uint64_t
HostProfiler::dropped() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return dropped_;
}

std::vector<HostProfiler::Span>
HostProfiler::spans() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return spans_;
}

std::map<std::string, uint64_t>
HostProfiler::totalsUs() const
{
    std::map<std::string, uint64_t> totals;
    std::lock_guard<std::mutex> lk(mu_);
    for (const Span &s : spans_)
        totals[s.name] += s.endUs - s.beginUs;
    return totals;
}

void
HostProfiler::clear()
{
    std::lock_guard<std::mutex> lk(mu_);
    spans_.clear();
    dropped_ = 0;
}

void
writeHostSpansJson(std::ostream &os, const HostProfiler &prof)
{
    os << ",\n{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":2,"
          "\"args\":{\"name\":\"host (wall-clock us)\"}}";
    os << ",\n{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":2,"
          "\"tid\":0,\"args\":{\"name\":\"host phases\"}}";
    for (const HostProfiler::Span &s : prof.spans()) {
        os << ",\n{\"ph\":\"X\",\"name\":\"" << s.name
           << "\",\"pid\":2,\"tid\":0,\"ts\":" << s.beginUs
           << ",\"dur\":" << s.endUs - s.beginUs << "}";
    }
}

} // namespace plast
