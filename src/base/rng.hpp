/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * All benchmark data is generated with this splitmix64-based generator so
 * that runs are bit-reproducible across platforms (no dependence on
 * libstdc++ distribution internals).
 */

#ifndef PLAST_BASE_RNG_HPP
#define PLAST_BASE_RNG_HPP

#include <cstdint>

namespace plast
{

/** splitmix64: tiny, fast, high-quality 64-bit generator. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

    uint64_t
    next()
    {
        uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform in [0, bound). bound must be > 0. */
    uint64_t
    nextBounded(uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform float in [0, 1). */
    float
    nextFloat()
    {
        return static_cast<float>(next() >> 40) /
               static_cast<float>(1ull << 24);
    }

    /** Uniform float in [lo, hi). */
    float
    nextFloat(float lo, float hi)
    {
        return lo + (hi - lo) * nextFloat();
    }

  private:
    uint64_t state_;
};

} // namespace plast

#endif // PLAST_BASE_RNG_HPP
