/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * All benchmark data is generated with this splitmix64-based generator so
 * that runs are bit-reproducible across platforms (no dependence on
 * libstdc++ distribution internals).
 */

#ifndef PLAST_BASE_RNG_HPP
#define PLAST_BASE_RNG_HPP

#include <cstdint>

namespace plast
{

/** splitmix64: tiny, fast, high-quality 64-bit generator. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

    uint64_t
    next()
    {
        uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /**
     * Uniform in [0, bound); bound == 0 returns 0 (instead of the
     * divide-by-zero UB `next() % 0` would be). Uses plain modulo: the
     * bias of value v < bound is at most bound/2^64 relative to a
     * perfect uniform draw — under 2^-40 for every bound below 2^24,
     * which is far beyond what workload synthesis or the fuzzer can
     * observe. The payoff is platform-independent determinism: no
     * rejection loop, so every (seed, call sequence) pair yields the
     * same values everywhere.
     */
    uint64_t
    nextBounded(uint64_t bound)
    {
        uint64_t raw = next(); // always advance, even for bound <= 1
        return bound == 0 ? 0 : raw % bound;
    }

    /** Uniform float in [0, 1). */
    float
    nextFloat()
    {
        return static_cast<float>(next() >> 40) /
               static_cast<float>(1ull << 24);
    }

    /** Uniform float in [lo, hi). */
    float
    nextFloat(float lo, float hi)
    {
        return lo + (hi - lo) * nextFloat();
    }

  private:
    uint64_t state_;
};

} // namespace plast

#endif // PLAST_BASE_RNG_HPP
