/**
 * @file
 * Logging and error-reporting helpers in the gem5 style.
 *
 * panic()  — a simulator bug: something that should never happen
 *            regardless of user input. Aborts.
 * fatal()  — a user error (bad configuration, unmappable program, ...).
 *            Exits with an error code.
 * warn()   — functionality that may be imprecise but lets the run continue.
 * inform() — status messages.
 */

#ifndef PLAST_BASE_LOGGING_HPP
#define PLAST_BASE_LOGGING_HPP

#include <cstdarg>
#include <cstdint>
#include <string>

namespace plast
{

/** printf-style formatting into a std::string. */
std::string strfmt(const char *fmt, ...) __attribute__((format(printf, 1, 2)));
std::string vstrfmt(const char *fmt, va_list ap);

namespace detail
{
[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);
} // namespace detail

/** Enable/disable inform() output (benches quiet it down). */
void setVerbose(bool verbose);
bool verbose();

#define panic(...) \
    ::plast::detail::panicImpl(__FILE__, __LINE__, ::plast::strfmt(__VA_ARGS__))
#define fatal(...) \
    ::plast::detail::fatalImpl(__FILE__, __LINE__, ::plast::strfmt(__VA_ARGS__))
#define warn(...) ::plast::detail::warnImpl(::plast::strfmt(__VA_ARGS__))
#define inform(...) ::plast::detail::informImpl(::plast::strfmt(__VA_ARGS__))

#define panic_if(cond, ...)                   \
    do {                                      \
        if (cond) { panic(__VA_ARGS__); }     \
    } while (0)

#define fatal_if(cond, ...)                   \
    do {                                      \
        if (cond) { fatal(__VA_ARGS__); }     \
    } while (0)

} // namespace plast

#endif // PLAST_BASE_LOGGING_HPP
