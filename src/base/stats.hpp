/**
 * @file
 * A lightweight named-statistics registry. Simulator components register
 * counters under hierarchical names ("pcu03.activeCycles"); harnesses dump
 * or query them after a run.
 */

#ifndef PLAST_BASE_STATS_HPP
#define PLAST_BASE_STATS_HPP

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

namespace plast
{

/** A flat registry of uint64 counters keyed by dotted names. */
class StatSet
{
  public:
    /** Add delta to the named counter (created at zero on first use). */
    void
    add(const std::string &name, uint64_t delta = 1)
    {
        counters_[name] += delta;
    }

    void
    set(const std::string &name, uint64_t value)
    {
        counters_[name] = value;
    }

    uint64_t
    get(const std::string &name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second;
    }

    bool
    has(const std::string &name) const
    {
        return counters_.count(name) != 0;
    }

    const std::map<std::string, uint64_t> &all() const { return counters_; }

    /** Sum of all counters whose name starts with the given prefix. */
    uint64_t sumPrefix(const std::string &prefix) const;

    void dump(std::ostream &os) const;
    /** All counters as one flat JSON object, keys sorted. */
    void dumpJson(std::ostream &os) const;
    void clear() { counters_.clear(); }

  private:
    std::map<std::string, uint64_t> counters_;
};

} // namespace plast

#endif // PLAST_BASE_STATS_HPP
