/**
 * @file
 * Cooperative cancellation for long-running host-driven work (the
 * cycle simulator above all). A CancelToken carries two independent
 * stop signals:
 *
 *   - an explicit cancel request (Server::cancelJob, drain-now paths,
 *     a single-flight follower abandoning its wait);
 *   - an absolute host-clock deadline in microseconds (the serve
 *     daemon's per-job latency budget).
 *
 * The token is polled, never delivered: Fabric::runChecked checks it
 * every SimOptions::cancelPollCycles simulated cycles, so a worker
 * thread aborts a hung or oversized simulation within a bounded wall
 * slice and returns a typed kCancelled / kDeadlineExceeded status
 * instead of occupying its worker forever. Polling costs one relaxed
 * atomic load per window (plus a clock read only when a deadline is
 * armed), which is why it is safe to leave enabled on the hot path.
 *
 * Tokens are shared by pointer between the requesting thread and the
 * executing thread; both sides only touch atomics, so there is no
 * lock and no lifetime coupling beyond "the requester keeps the token
 * alive until the job record is retired" (the serve worker owns the
 * token for exactly the scope of the job).
 */

#ifndef PLAST_BASE_CANCEL_HPP
#define PLAST_BASE_CANCEL_HPP

#include <atomic>
#include <cstdint>

namespace plast
{

class CancelToken
{
  public:
    CancelToken() = default;

    // Tokens are shared by address; copying one would silently split
    // the cancel signal from its observers.
    CancelToken(const CancelToken &) = delete;
    CancelToken &operator=(const CancelToken &) = delete;

    /** Request cooperative stop (idempotent, thread-safe). */
    void
    requestCancel()
    {
        cancelled_.store(true, std::memory_order_relaxed);
    }

    bool
    cancelRequested() const
    {
        return cancelled_.load(std::memory_order_relaxed);
    }

    /** Arm an absolute deadline on the host microsecond clock
     *  (HostProfiler::nowUs time base). 0 disarms. */
    void
    setDeadlineUs(uint64_t absUs)
    {
        deadlineUs_.store(absUs, std::memory_order_relaxed);
    }

    uint64_t
    deadlineUs() const
    {
        return deadlineUs_.load(std::memory_order_relaxed);
    }

    bool
    hasDeadline() const
    {
        return deadlineUs() != 0;
    }

    /** True once the armed deadline has passed (`nowUs` from the same
     *  clock that armed it). Never true without a deadline. */
    bool
    expired(uint64_t nowUs) const
    {
        uint64_t d = deadlineUs();
        return d != 0 && nowUs >= d;
    }

  private:
    std::atomic<bool> cancelled_{false};
    std::atomic<uint64_t> deadlineUs_{0};
};

} // namespace plast

#endif // PLAST_BASE_CANCEL_HPP
