/**
 * @file
 * Fluent construction API for PIR programs. The 13 benchmark
 * applications (src/apps) and the examples build their controller trees
 * through this class; it owns the expression pool and performs basic
 * well-formedness checks as nodes are created.
 */

#ifndef PLAST_PIR_BUILDER_HPP
#define PLAST_PIR_BUILDER_HPP

#include <string>
#include <vector>

#include "pir/ir.hpp"

namespace plast::pir
{

class Builder
{
  public:
    explicit Builder(std::string name);

    Program &program() { return prog_; }

    // ---- host interface ------------------------------------------------
    ArgId arg(const std::string &name, Word value = 0);
    void bindArg(ArgId id, Word value);
    int32_t argOut();

    // ---- memories -------------------------------------------------------
    MemId dram(const std::string &name, uint64_t words);
    MemId sram(const std::string &name, uint64_t words,
               BankingMode mode = BankingMode::kStrided,
               uint32_t nbufMin = 1);
    /** Declare the generation boundary of an accumulated memory. */
    void
    clearAccumAt(MemId mem, NodeId ctrl)
    {
        prog_.mems.at(mem).clearAt = ctrl;
    }

    // ---- counters -------------------------------------------------------
    CtrId ctr(const std::string &name, int64_t min, int64_t max,
              int64_t step = 1, bool vectorized = false);
    CtrId ctrArg(const std::string &name, ArgId bound, int64_t min = 0,
                 int64_t step = 1, bool vectorized = false);
    /** Bound streams from a producer leaf's sink (dynamic size). */
    CtrId ctrDyn(const std::string &name, NodeId producer, int32_t sink,
                 int64_t min = 0, int64_t step = 1,
                 bool vectorized = false, int32_t boundScale = 1);

    // ---- expressions ----------------------------------------------------
    ExprId imm(Word w);
    ExprId immI(int32_t v) { return imm(intToWord(v)); }
    ExprId immF(float f) { return imm(floatToWord(f)); }
    ExprId argE(ArgId a);
    ExprId ctrE(CtrId c);
    ExprId laneId();
    ExprId alu(FuOp op, ExprId a, ExprId b = kNone, ExprId c = kNone);
    ExprId load(MemId mem, ExprId addr);
    /** Reference to this leaf's streamIns[idx] / scalarIns[idx]. */
    ExprId streamRef(int32_t idx);
    ExprId scalarRef(int32_t idx);

    // Arithmetic conveniences.
    ExprId iadd(ExprId a, ExprId b) { return alu(FuOp::kIAdd, a, b); }
    ExprId imul(ExprId a, ExprId b) { return alu(FuOp::kIMul, a, b); }
    ExprId isub(ExprId a, ExprId b) { return alu(FuOp::kISub, a, b); }
    ExprId fadd(ExprId a, ExprId b) { return alu(FuOp::kFAdd, a, b); }
    ExprId fsub(ExprId a, ExprId b) { return alu(FuOp::kFSub, a, b); }
    ExprId fmul(ExprId a, ExprId b) { return alu(FuOp::kFMul, a, b); }
    ExprId fdiv(ExprId a, ExprId b) { return alu(FuOp::kFDiv, a, b); }
    /** a * b + c (integer; the affine-addressing workhorse). */
    ExprId
    ima(ExprId a, ExprId b, ExprId c)
    {
        return alu(FuOp::kIMA, a, b, c);
    }

    // ---- controller tree --------------------------------------------
    NodeId outer(const std::string &name, CtrlScheme scheme,
                 std::vector<CtrId> ctrs, NodeId parent,
                 uint32_t depthHint = 0);
    NodeId compute(const std::string &name, NodeId parent,
                   std::vector<CtrId> leafCtrs,
                   std::vector<StreamIn> streamIns,
                   std::vector<ScalarIn> scalarIns, std::vector<Sink> sinks);
    /** Dense DRAM->SRAM tile load. */
    NodeId loadTile(const std::string &name, NodeId parent, MemId dram,
                    MemId sram, ExprId base, int64_t rows,
                    int64_t rowWords, int64_t dramRowStride,
                    int64_t sramRowStride = -1);
    /** Dense SRAM->DRAM tile store. */
    NodeId storeTile(const std::string &name, NodeId parent, MemId dram,
                     MemId sram, ExprId base, int64_t rows,
                     int64_t rowWords, int64_t dramRowStride,
                     int64_t sramRowStride = -1);
    /** Sparse gather: dram[addrMem[0..count)] -> sram. */
    NodeId gather(const std::string &name, NodeId parent, MemId dram,
                  MemId addrMem, MemId sram, int64_t count,
                  NodeId countSinkNode = kNone,
                  int32_t countSinkIdx = kNone, int32_t countScale = 1);

    /** Finish: set the root node and validate the whole program. */
    Program finish(NodeId root);

    // ---- sink helpers -----------------------------------------------
    static Sink storeSram(MemId mem, ExprId addr, ExprId value,
                          bool accumulate = false,
                          FuOp accumOp = FuOp::kFAdd);
    static Sink fold(FuOp op, ExprId value, CtrId level, int32_t argOut);
    static Sink foldToSram(FuOp op, ExprId value, CtrId level, MemId mem,
                           ExprId addr, bool accumulate = false,
                           bool crossLane = true);
    static Sink foldToScalar(FuOp op, ExprId value, CtrId level);
    static Sink flatMap(MemId mem, ExprId value, ExprId pred,
                        int32_t countArgOut = kNone);
    static Sink streamOut(MemId dram, ExprId dramAddr, ExprId value);
    static Sink scatterOut(MemId dram, ExprId dramAddr, ExprId value,
                           ExprId pred = kNone);

  private:
    void validate() const;

    Program prog_;
};

} // namespace plast::pir

#endif // PLAST_PIR_BUILDER_HPP
