#include "pir/validate.hpp"

#include <functional>
#include <map>
#include <set>

#include "base/logging.hpp"

namespace plast::pir
{

namespace
{

class Validator
{
  public:
    Validator(const Program &prog, uint32_t lanes)
        : prog_(prog), lanes_(lanes)
    {
    }

    std::vector<std::string>
    run()
    {
        if (prog_.root == kNone) {
            err("program has no root controller");
            return errors_;
        }
        checkTree();
        for (size_t n = 0; n < prog_.nodes.size(); ++n) {
            const Node &node = prog_.nodes[n];
            if (node.kind == NodeKind::kCompute)
                checkLeaf(static_cast<NodeId>(n));
            if (node.kind == NodeKind::kTransfer)
                checkTransfer(static_cast<NodeId>(n));
        }
        checkWriters();
        return errors_;
    }

  private:
    void
    err(std::string msg)
    {
        errors_.push_back(std::move(msg));
    }

    void
    checkTree()
    {
        // Every non-root node must be reachable from the root exactly
        // once, and parents must match child links.
        std::set<NodeId> seen;
        std::function<void(NodeId)> walk = [&](NodeId id) {
            if (seen.count(id)) {
                err(strfmt("node '%s' reachable twice",
                           prog_.nodes[id].name.c_str()));
                return;
            }
            seen.insert(id);
            const Node &n = prog_.nodes[id];
            for (NodeId c : n.children) {
                if (prog_.nodes[c].parent != id)
                    err(strfmt("child '%s' has mismatched parent",
                               prog_.nodes[c].name.c_str()));
                walk(c);
            }
        };
        walk(prog_.root);
        for (size_t n = 0; n < prog_.nodes.size(); ++n) {
            if (!seen.count(static_cast<NodeId>(n)))
                err(strfmt("node '%s' is not reachable from the root",
                           prog_.nodes[n].name.c_str()));
        }
    }

    void
    scanExpr(ExprId id, const Node &leaf, std::set<MemId> &readMems)
    {
        if (id == kNone)
            return;
        const Expr &e = prog_.exprs[id];
        switch (e.kind) {
          case ExprKind::kLoadSram:
            if (prog_.mems[e.mem].kind != MemKind::kSram)
                err(strfmt("leaf '%s' load()s DRAM memory '%s'",
                           leaf.name.c_str(),
                           prog_.mems[e.mem].name.c_str()));
            readMems.insert(e.mem);
            scanExpr(e.addr, leaf, readMems);
            break;
          case ExprKind::kStreamIn:
            if (e.stream < 0 ||
                e.stream >= static_cast<int32_t>(leaf.streamIns.size()))
                err(strfmt("leaf '%s' references stream %d of %zu",
                           leaf.name.c_str(), e.stream,
                           leaf.streamIns.size()));
            break;
          case ExprKind::kScalarIn:
            if (e.scalar < 0 ||
                e.scalar >= static_cast<int32_t>(leaf.scalarIns.size()))
                err(strfmt("leaf '%s' references scalar %d of %zu",
                           leaf.name.c_str(), e.scalar,
                           leaf.scalarIns.size()));
            break;
          case ExprKind::kAlu:
            scanExpr(e.a, leaf, readMems);
            scanExpr(e.b, leaf, readMems);
            scanExpr(e.c, leaf, readMems);
            break;
          default:
            break;
        }
    }

    void
    checkLeaf(NodeId id)
    {
        const Node &leaf = prog_.nodes[id];
        // Vectorization: at most one vectorized counter, and only the
        // innermost position.
        for (size_t i = 0; i < leaf.leafCtrs.size(); ++i) {
            const CtrDecl &c = prog_.ctrs[leaf.leafCtrs[i]];
            if (c.vectorized && i + 1 != leaf.leafCtrs.size())
                err(strfmt("leaf '%s': vectorized counter '%s' is not "
                           "innermost",
                           leaf.name.c_str(), c.name.c_str()));
        }

        std::set<MemId> reads;
        for (size_t s = 0; s < leaf.sinks.size(); ++s) {
            const Sink &sk = leaf.sinks[s];
            scanExpr(sk.value, leaf, reads);
            scanExpr(sk.pred, leaf, reads);
            scanExpr(sk.scatterPred, leaf, reads);
            scanExpr(sk.addr, leaf, reads);
            scanExpr(sk.dramAddr, leaf, reads);
            if (sk.kind == SinkKind::kFold) {
                bool found = false;
                size_t lvl = 0;
                for (size_t i = 0; i < leaf.leafCtrs.size(); ++i) {
                    if (leaf.leafCtrs[i] == sk.foldLevel) {
                        found = true;
                        lvl = i;
                    }
                }
                if (!found) {
                    err(strfmt("leaf '%s' sink %zu: fold level is not "
                               "one of the leaf's counters",
                               leaf.name.c_str(), s));
                    continue;
                }
                (void)lvl;
                if (!sk.crossLane && !leaf.leafCtrs.empty()) {
                    const CtrDecl &inner =
                        prog_.ctrs[leaf.leafCtrs.back()];
                    int64_t span =
                        inner.boundArg != kNone
                            ? wordToInt(
                                  prog_.args[inner.boundArg].value)
                            : inner.max;
                    if (inner.vectorized &&
                        span - inner.min >
                            static_cast<int64_t>(lanes_) * inner.step)
                        err(strfmt(
                            "leaf '%s' sink %zu: per-lane fold needs "
                            "the vectorized counter to span one "
                            "wavefront (<= %u lanes), got %lld",
                            leaf.name.c_str(), s, lanes_,
                            static_cast<long long>(span - inner.min)));
                }
            }
            if (sk.kind == SinkKind::kFlatMapSram &&
                sk.pred == kNone)
                err(strfmt("leaf '%s' sink %zu: FlatMap needs a "
                           "predicate",
                           leaf.name.c_str(), s));
        }
    }

    void
    checkTransfer(NodeId id)
    {
        const Node &n = prog_.nodes[id];
        const TransferDesc &x = n.xfer;
        if (prog_.mems[x.dram].kind != MemKind::kDram)
            err(strfmt("transfer '%s': dram operand is on-chip",
                       n.name.c_str()));
        if (x.sram != kNone &&
            prog_.mems[x.sram].kind != MemKind::kSram)
            err(strfmt("transfer '%s': sram operand is off-chip",
                       n.name.c_str()));
        if (!x.sparse && x.rowWords <= 0 && x.rowWordsArg == kNone)
            err(strfmt("transfer '%s': empty rows", n.name.c_str()));
    }

    void
    checkWriters()
    {
        std::map<MemId, int> writers;
        for (const Node &n : prog_.nodes) {
            if (n.kind == NodeKind::kCompute) {
                for (const Sink &sk : n.sinks) {
                    if (sk.kind == SinkKind::kStoreSram ||
                        sk.kind == SinkKind::kFlatMapSram ||
                        (sk.kind == SinkKind::kFold &&
                         sk.dest == FoldDest::kSramAddr))
                        writers[sk.mem]++;
                }
            } else if (n.kind == NodeKind::kTransfer &&
                       n.xfer.sram != kNone &&
                       (n.xfer.load || n.xfer.sparse)) {
                if (n.xfer.load)
                    writers[n.xfer.sram]++;
            }
        }
        for (auto [mem, count] : writers) {
            if (count > 2)
                err(strfmt("memory '%s' has %d writers; PMUs support "
                           "at most two write ports",
                           prog_.mems[mem].name.c_str(), count));
        }
    }

    const Program &prog_;
    uint32_t lanes_;
    std::vector<std::string> errors_;
};

} // namespace

std::vector<std::string>
validateProgram(const Program &prog, uint32_t lanes)
{
    return Validator(prog, lanes).run();
}

} // namespace plast::pir
