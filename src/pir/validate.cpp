#include "pir/validate.hpp"

#include <functional>
#include <map>
#include <set>

#include "base/logging.hpp"

namespace plast::pir
{

namespace
{

class Validator
{
  public:
    Validator(const Program &prog, uint32_t lanes)
        : prog_(prog), lanes_(lanes)
    {
    }

    std::vector<std::string>
    run()
    {
        if (prog_.root == kNone) {
            err("program has no root controller");
            return errors_;
        }
        // Referential integrity first: the structural checks below
        // index freely through nodes/ctrs/mems/exprs, so any
        // out-of-range id must stop validation here with a diagnostic
        // instead of undefined behaviour.
        checkRefs();
        if (!errors_.empty())
            return errors_;
        checkTree();
        for (size_t n = 0; n < prog_.nodes.size(); ++n) {
            const Node &node = prog_.nodes[n];
            if (node.kind == NodeKind::kCompute)
                checkLeaf(static_cast<NodeId>(n));
            if (node.kind == NodeKind::kTransfer)
                checkTransfer(static_cast<NodeId>(n));
        }
        checkWriters();
        return errors_;
    }

  private:
    void
    err(std::string msg)
    {
        errors_.push_back(std::move(msg));
    }

    bool
    nodeIdOk(NodeId id) const
    {
        return id >= 0 && id < static_cast<NodeId>(prog_.nodes.size());
    }

    bool
    exprIdOk(ExprId id) const
    {
        return id >= 0 && id < static_cast<ExprId>(prog_.exprs.size());
    }

    bool
    memIdOk(MemId id) const
    {
        return id >= 0 && id < static_cast<MemId>(prog_.mems.size());
    }

    bool
    ctrIdOk(CtrId id) const
    {
        return id >= 0 && id < static_cast<CtrId>(prog_.ctrs.size());
    }

    /** kNone is allowed; anything else must be a live expression. */
    bool
    optExprOk(ExprId id) const
    {
        return id == kNone || exprIdOk(id);
    }

    /**
     * Every id stored anywhere in the program resolves to a live
     * declaration: expression operands, sink targets, counter bounds,
     * cross-leaf scalar references and transfer operands. Catches the
     * malformed shapes hand-forged programs, shrinker candidates and
     * parsed .pir seeds can produce (dangling MemId / sink references,
     * out-of-range bank/buffer counts, broken counter chains).
     */
    void
    checkRefs()
    {
        for (size_t i = 0; i < prog_.mems.size(); ++i) {
            const MemDecl &m = prog_.mems[i];
            if (m.sizeWords == 0)
                err(strfmt("memory '%s' has zero words",
                           m.name.c_str()));
            if (m.nbufMin < 1 || m.nbufMin > 64)
                err(strfmt("memory '%s': buffer depth %u out of range "
                           "[1, 64]",
                           m.name.c_str(), m.nbufMin));
            if (m.clearAt != kNone && m.clearAt != kNeverClear &&
                !nodeIdOk(m.clearAt))
                err(strfmt("memory '%s': clearAt names node %d of %zu",
                           m.name.c_str(), m.clearAt,
                           prog_.nodes.size()));
        }
        for (size_t i = 0; i < prog_.ctrs.size(); ++i) {
            const CtrDecl &c = prog_.ctrs[i];
            if (c.step <= 0)
                err(strfmt("counter '%s' has non-positive step %lld",
                           c.name.c_str(),
                           static_cast<long long>(c.step)));
            if (c.boundArg != kNone &&
                (c.boundArg < 0 ||
                 c.boundArg >= static_cast<ArgId>(prog_.args.size())))
                err(strfmt("counter '%s': bound arg %d of %zu",
                           c.name.c_str(), c.boundArg,
                           prog_.args.size()));
            if (c.boundSinkNode != kNone) {
                if (!nodeIdOk(c.boundSinkNode)) {
                    err(strfmt("counter '%s': dynamic bound from "
                               "dangling node %d",
                               c.name.c_str(), c.boundSinkNode));
                } else {
                    const Node &p = prog_.nodes[c.boundSinkNode];
                    if (p.kind != NodeKind::kCompute ||
                        c.boundSinkIdx < 0 ||
                        c.boundSinkIdx >=
                            static_cast<int32_t>(p.sinks.size()))
                        err(strfmt("counter '%s': dynamic bound from "
                                   "'%s' sink %d (not a compute sink)",
                                   c.name.c_str(), p.name.c_str(),
                                   c.boundSinkIdx));
                }
            }
        }
        for (size_t i = 0; i < prog_.exprs.size(); ++i) {
            const Expr &e = prog_.exprs[i];
            bool ok = true;
            switch (e.kind) {
              case ExprKind::kArg:
                ok = e.arg >= 0 &&
                     e.arg < static_cast<ArgId>(prog_.args.size());
                break;
              case ExprKind::kCtr:
                ok = ctrIdOk(e.ctr);
                break;
              case ExprKind::kAlu:
                ok = optExprOk(e.a) && optExprOk(e.b) && optExprOk(e.c);
                break;
              case ExprKind::kLoadSram:
                ok = memIdOk(e.mem) && exprIdOk(e.addr);
                break;
              default:
                break;
            }
            if (!ok)
                err(strfmt("expression %zu has a dangling reference",
                           i));
        }
        for (size_t n = 0; n < prog_.nodes.size(); ++n) {
            const Node &node = prog_.nodes[n];
            std::string where =
                strfmt("node '%s'", node.name.c_str());
            if (node.parent != kNone && !nodeIdOk(node.parent))
                err(where + ": dangling parent");
            for (NodeId c : node.children) {
                if (!nodeIdOk(c))
                    err(where + ": dangling child");
            }
            for (CtrId c : node.ctrs) {
                if (!ctrIdOk(c))
                    err(where + ": dangling outer counter");
            }
            for (CtrId c : node.leafCtrs) {
                if (!ctrIdOk(c))
                    err(where + ": dangling leaf counter");
            }
            for (const StreamIn &si : node.streamIns) {
                if (!memIdOk(si.dram) ||
                    prog_.mems[si.dram].kind != MemKind::kDram)
                    err(where + ": stream input from a non-DRAM memory");
                if (!exprIdOk(si.addr))
                    err(where + ": stream input address dangles");
            }
            for (const ScalarIn &si : node.scalarIns) {
                if (!nodeIdOk(si.fromNode) ||
                    prog_.nodes[si.fromNode].kind !=
                        NodeKind::kCompute ||
                    si.fromSink < 0 ||
                    si.fromSink >= static_cast<int32_t>(
                                       prog_.nodes[si.fromNode]
                                           .sinks.size()))
                    err(where +
                        strfmt(": scalar input from dangling node %d "
                               "sink %d",
                               si.fromNode, si.fromSink));
            }
            for (size_t s = 0; s < node.sinks.size(); ++s) {
                const Sink &sk = node.sinks[s];
                std::string sw = where + strfmt(" sink %zu", s);
                if (!optExprOk(sk.value) || !optExprOk(sk.addr) ||
                    !optExprOk(sk.pred) || !optExprOk(sk.postScale) ||
                    !optExprOk(sk.postOffset) ||
                    !optExprOk(sk.dramAddr) ||
                    !optExprOk(sk.scatterPred))
                    err(sw + ": dangling expression reference");
                bool usesMem =
                    sk.kind == SinkKind::kStoreSram ||
                    sk.kind == SinkKind::kFlatMapSram ||
                    (sk.kind == SinkKind::kFold &&
                     sk.dest == FoldDest::kSramAddr);
                if (usesMem &&
                    (!memIdOk(sk.mem) ||
                     prog_.mems[sk.mem].kind != MemKind::kSram))
                    err(sw + strfmt(": dangling or non-SRAM memory %d",
                                    sk.mem));
                if (sk.kind == SinkKind::kFold && !ctrIdOk(sk.foldLevel))
                    err(sw + ": dangling fold level");
                if ((sk.kind == SinkKind::kStreamOut ||
                     sk.kind == SinkKind::kScatterOut) &&
                    (!memIdOk(sk.dram) ||
                     prog_.mems[sk.dram].kind != MemKind::kDram))
                    err(sw + ": DRAM sink targets a non-DRAM memory");
                if (sk.kind == SinkKind::kFold &&
                    sk.dest == FoldDest::kArgOut &&
                    (sk.argOut < 0 ||
                     sk.argOut >=
                         static_cast<int32_t>(prog_.numArgOuts)))
                    err(sw + strfmt(": argOut slot %d of %u", sk.argOut,
                                    prog_.numArgOuts));
                if (sk.countArgOut != kNone &&
                    (sk.countArgOut < 0 ||
                     sk.countArgOut >=
                         static_cast<int32_t>(prog_.numArgOuts)))
                    err(sw + strfmt(": count argOut slot %d of %u",
                                    sk.countArgOut, prog_.numArgOuts));
            }
            if (node.kind == NodeKind::kTransfer) {
                const TransferDesc &x = node.xfer;
                if (!memIdOk(x.dram))
                    err(where + ": transfer dram operand dangles");
                if (x.sram != kNone && !memIdOk(x.sram))
                    err(where + ": transfer sram operand dangles");
                if (x.base != kNone && !exprIdOk(x.base))
                    err(where + ": transfer base expression dangles");
                if (x.addrMem != kNone && !memIdOk(x.addrMem))
                    err(where + ": gather index memory dangles");
                if (x.rowWordsArg != kNone &&
                    (x.rowWordsArg < 0 ||
                     x.rowWordsArg >=
                         static_cast<ArgId>(prog_.args.size())))
                    err(where + ": dynamic row length arg dangles");
                if (x.countSinkNode != kNone) {
                    if (!nodeIdOk(x.countSinkNode) ||
                        prog_.nodes[x.countSinkNode].kind !=
                            NodeKind::kCompute ||
                        x.countSinkIdx < 0 ||
                        x.countSinkIdx >=
                            static_cast<int32_t>(
                                prog_.nodes[x.countSinkNode]
                                    .sinks.size()))
                        err(where + ": dynamic count sink dangles");
                }
            }
        }
        if (!nodeIdOk(prog_.root))
            err(strfmt("root id %d of %zu nodes", prog_.root,
                       prog_.nodes.size()));
    }

    void
    checkTree()
    {
        // Every non-root node must be reachable from the root exactly
        // once, and parents must match child links.
        std::set<NodeId> seen;
        std::function<void(NodeId)> walk = [&](NodeId id) {
            if (seen.count(id)) {
                err(strfmt("node '%s' reachable twice",
                           prog_.nodes[id].name.c_str()));
                return;
            }
            seen.insert(id);
            const Node &n = prog_.nodes[id];
            // A childless outer controller can never complete: its
            // control box waits forever on child-done pulses that no
            // unit produces (guaranteed fabric deadlock).
            if (n.kind == NodeKind::kOuter && n.children.empty())
                err(strfmt("outer node '%s' has no children",
                           n.name.c_str()));
            for (NodeId c : n.children) {
                if (prog_.nodes[c].parent != id)
                    err(strfmt("child '%s' has mismatched parent",
                               prog_.nodes[c].name.c_str()));
                walk(c);
            }
        };
        walk(prog_.root);
        for (size_t n = 0; n < prog_.nodes.size(); ++n) {
            if (!seen.count(static_cast<NodeId>(n)))
                err(strfmt("node '%s' is not reachable from the root",
                           prog_.nodes[n].name.c_str()));
        }
    }

    void
    scanExpr(ExprId id, const Node &leaf, std::set<MemId> &readMems)
    {
        if (id == kNone)
            return;
        const Expr &e = prog_.exprs[id];
        switch (e.kind) {
          case ExprKind::kLoadSram:
            if (prog_.mems[e.mem].kind != MemKind::kSram)
                err(strfmt("leaf '%s' load()s DRAM memory '%s'",
                           leaf.name.c_str(),
                           prog_.mems[e.mem].name.c_str()));
            readMems.insert(e.mem);
            scanExpr(e.addr, leaf, readMems);
            break;
          case ExprKind::kStreamIn:
            if (e.stream < 0 ||
                e.stream >= static_cast<int32_t>(leaf.streamIns.size()))
                err(strfmt("leaf '%s' references stream %d of %zu",
                           leaf.name.c_str(), e.stream,
                           leaf.streamIns.size()));
            break;
          case ExprKind::kScalarIn:
            if (e.scalar < 0 ||
                e.scalar >= static_cast<int32_t>(leaf.scalarIns.size()))
                err(strfmt("leaf '%s' references scalar %d of %zu",
                           leaf.name.c_str(), e.scalar,
                           leaf.scalarIns.size()));
            break;
          case ExprKind::kAlu:
            scanExpr(e.a, leaf, readMems);
            scanExpr(e.b, leaf, readMems);
            scanExpr(e.c, leaf, readMems);
            break;
          default:
            break;
        }
    }

    void
    checkLeaf(NodeId id)
    {
        const Node &leaf = prog_.nodes[id];
        // Vectorization: at most one vectorized counter, and only the
        // innermost position.
        for (size_t i = 0; i < leaf.leafCtrs.size(); ++i) {
            const CtrDecl &c = prog_.ctrs[leaf.leafCtrs[i]];
            if (c.vectorized && i + 1 != leaf.leafCtrs.size())
                err(strfmt("leaf '%s': vectorized counter '%s' is not "
                           "innermost",
                           leaf.name.c_str(), c.name.c_str()));
        }

        std::set<MemId> reads;
        for (size_t s = 0; s < leaf.sinks.size(); ++s) {
            const Sink &sk = leaf.sinks[s];
            scanExpr(sk.value, leaf, reads);
            scanExpr(sk.pred, leaf, reads);
            scanExpr(sk.scatterPred, leaf, reads);
            scanExpr(sk.addr, leaf, reads);
            scanExpr(sk.dramAddr, leaf, reads);
            if (sk.kind == SinkKind::kFold) {
                bool found = false;
                size_t lvl = 0;
                for (size_t i = 0; i < leaf.leafCtrs.size(); ++i) {
                    if (leaf.leafCtrs[i] == sk.foldLevel) {
                        found = true;
                        lvl = i;
                    }
                }
                if (!found) {
                    err(strfmt("leaf '%s' sink %zu: fold level is not "
                               "one of the leaf's counters",
                               leaf.name.c_str(), s));
                    continue;
                }
                (void)lvl;
                if (!sk.crossLane && !leaf.leafCtrs.empty()) {
                    const CtrDecl &inner =
                        prog_.ctrs[leaf.leafCtrs.back()];
                    int64_t span =
                        inner.boundArg != kNone
                            ? wordToInt(
                                  prog_.args[inner.boundArg].value)
                            : inner.max;
                    if (inner.vectorized &&
                        span - inner.min >
                            static_cast<int64_t>(lanes_) * inner.step)
                        err(strfmt(
                            "leaf '%s' sink %zu: per-lane fold needs "
                            "the vectorized counter to span one "
                            "wavefront (<= %u lanes), got %lld",
                            leaf.name.c_str(), s, lanes_,
                            static_cast<long long>(span - inner.min)));
                }
            }
            if (sk.kind == SinkKind::kFlatMapSram &&
                sk.pred == kNone)
                err(strfmt("leaf '%s' sink %zu: FlatMap needs a "
                           "predicate",
                           leaf.name.c_str(), s));
        }
    }

    void
    checkTransfer(NodeId id)
    {
        const Node &n = prog_.nodes[id];
        const TransferDesc &x = n.xfer;
        if (prog_.mems[x.dram].kind != MemKind::kDram)
            err(strfmt("transfer '%s': dram operand is on-chip",
                       n.name.c_str()));
        if (x.sram != kNone &&
            prog_.mems[x.sram].kind != MemKind::kSram)
            err(strfmt("transfer '%s': sram operand is off-chip",
                       n.name.c_str()));
        if (!x.sparse && x.rowWords <= 0 && x.rowWordsArg == kNone)
            err(strfmt("transfer '%s': empty rows", n.name.c_str()));
    }

    void
    checkWriters()
    {
        std::map<MemId, int> writers;
        for (const Node &n : prog_.nodes) {
            if (n.kind == NodeKind::kCompute) {
                for (const Sink &sk : n.sinks) {
                    if (sk.kind == SinkKind::kStoreSram ||
                        sk.kind == SinkKind::kFlatMapSram ||
                        (sk.kind == SinkKind::kFold &&
                         sk.dest == FoldDest::kSramAddr))
                        writers[sk.mem]++;
                }
            } else if (n.kind == NodeKind::kTransfer &&
                       n.xfer.sram != kNone &&
                       (n.xfer.load || n.xfer.sparse)) {
                if (n.xfer.load)
                    writers[n.xfer.sram]++;
            }
        }
        for (auto [mem, count] : writers) {
            if (count > 2)
                err(strfmt("memory '%s' has %d writers; PMUs support "
                           "at most two write ports",
                           prog_.mems[mem].name.c_str(), count));
        }
    }

    const Program &prog_;
    uint32_t lanes_;
    std::vector<std::string> errors_;
};

} // namespace

std::vector<std::string>
validateProgram(const Program &prog, uint32_t lanes)
{
    return Validator(prog, lanes).run();
}

} // namespace plast::pir
