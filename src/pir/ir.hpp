/**
 * @file
 * The parallel-pattern intermediate representation (PIR).
 *
 * Applications are hierarchies of parallelizable dataflow pipelines, as
 * produced from the parallel patterns Map / FlatMap / Fold / HashReduce
 * (§2, §3.6): outer controllers contain only other controllers; inner
 * controllers (leaves) are dataflow graphs of compute and memory
 * operations. Leaves are either Compute pipelines (a counter stack plus
 * an expression DAG with sinks) or Transfers (dense tile loads/stores
 * and sparse gathers between DRAM and on-chip memories).
 *
 * Outer-loop parallelization mirrors DHDL: the builder unrolls by
 * instantiating sibling leaves over strided counter ranges
 * (user-specified factors, §3.6); see pir/builder.hpp helpers.
 */

#ifndef PLAST_PIR_IR_HPP
#define PLAST_PIR_IR_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "arch/config.hpp"
#include "arch/opcodes.hpp"
#include "base/types.hpp"

namespace plast::pir
{

using ExprId = int32_t;
using MemId = int32_t;
using CtrId = int32_t;
using NodeId = int32_t;
using ArgId = int32_t;
constexpr int32_t kNone = -1;
/** MemDecl::clearAt sentinel: a persistent accumulator (never zeroed by
 *  the fabric; e.g. model weights updated in place across epochs). */
constexpr int32_t kNeverClear = -2;

// --------------------------------------------------------------------
// Memories
// --------------------------------------------------------------------

enum class MemKind : uint8_t { kDram, kSram };

struct MemDecl
{
    MemKind kind = MemKind::kSram;
    std::string name;
    uint64_t sizeWords = 0;
    /** SRAM banking hint; kStrided unless the app needs FIFO/linebuffer
     *  semantics or duplicated parallel random reads. */
    BankingMode mode = BankingMode::kStrided;
    /** Extra multi-buffering on top of what metapipes require. */
    uint32_t nbufMin = 1;
    /**
     * Accumulated memories (reduction targets) are zeroed at the start
     * of every iteration of this controller — the reduction's
     * generation boundary. kNone: fresh at every writer-leaf run
     * (HashReduce semantics). Set via Builder::clearAccumAt.
     */
    NodeId clearAt = kNone;
};

// --------------------------------------------------------------------
// Counters (pattern index domains)
// --------------------------------------------------------------------

/** One loop index. Bound is a constant, a host argument, or a scalar
 *  computed at runtime by another leaf's sink (data-dependent sizes). */
struct CtrDecl
{
    std::string name;
    int64_t min = 0;
    int64_t step = 1;
    int64_t max = 0;          ///< used when boundArg/boundSink unset
    ArgId boundArg = kNone;   ///< bound = host argument value
    NodeId boundSinkNode = kNone; ///< bound streams from this leaf's...
    int32_t boundSinkIdx = kNone; ///< ...sink index (count / fold scalar)
    int32_t boundScale = 1;   ///< dynamic bound multiplier (count * k)
    bool vectorized = false;  ///< innermost SIMD dimension
};

// --------------------------------------------------------------------
// Expressions
// --------------------------------------------------------------------

enum class ExprKind : uint8_t
{
    kConst,    ///< literal word
    kArg,      ///< host argument (resolved at configuration time)
    kCtr,      ///< counter value (outer-controller or leaf counter)
    kAlu,      ///< FU operation over 1-3 operands
    kLoadSram, ///< read mems[mem] at `addr`
    kStreamIn, ///< element of dense DRAM input stream `stream`
    kScalarIn, ///< cross-leaf scalar stream `scalar`
    kLaneId,   ///< SIMD lane index
};

struct Expr
{
    ExprKind kind = ExprKind::kConst;
    Word cval = 0;
    ArgId arg = kNone;
    CtrId ctr = kNone;
    FuOp alu = FuOp::kNop;
    ExprId a = kNone, b = kNone, c = kNone;
    MemId mem = kNone;
    ExprId addr = kNone;
    int32_t stream = kNone;
    int32_t scalar = kNone;
};

// --------------------------------------------------------------------
// Leaf inputs and sinks
// --------------------------------------------------------------------

/** Dense DRAM input stream: one element per leaf index point; `addr`
 *  is the word offset within `dram`, affine with stride one in the
 *  vectorized counter. */
struct StreamIn
{
    MemId dram = kNone;
    ExprId addr = kNone;
};

/** Cross-leaf scalar stream: value produced by another leaf's sink,
 *  consumed once per run of this leaf. */
struct ScalarIn
{
    NodeId fromNode = kNone;
    int32_t fromSink = kNone;
};

enum class SinkKind : uint8_t
{
    kStoreSram,   ///< mems[mem][addr] = value (optionally accumulate)
    kFold,        ///< reduce `value` with `op` over counters >= level
    kFlatMapSram, ///< append value when pred != 0 (FIFO-mode memory)
    kStreamOut,   ///< dense DRAM store stream
    kScatterOut,  ///< sparse DRAM store (addr per lane)
};

enum class FoldDest : uint8_t { kArgOut, kSramAddr, kScalarStream };

struct Sink
{
    SinkKind kind = SinkKind::kStoreSram;
    ExprId value = kNone;

    // kStoreSram / kFlatMapSram
    MemId mem = kNone;
    ExprId addr = kNone;
    bool accumulate = false;
    FuOp accumOp = FuOp::kFAdd;

    // kFold
    FuOp foldOp = FuOp::kFAdd;
    CtrId foldLevel = kNone;   ///< outermost counter inside the fold
    /**
     * true: reduce across SIMD lanes too (scalar result, reduction
     * tree). false: per-lane accumulators across the fold domain
     * (vector result); requires the vectorized counter to span a
     * single wavefront per fold iteration (e.g. GEMM / CNN inner
     * products over a 16-wide output slice).
     */
    bool crossLane = true;
    /** Optional affine post-op on the fold result:
     *  r' = r * postScale + postOffset (lane-uniform, data-free
     *  expressions; kNone = identity). Lowered to one FMA stage. */
    ExprId postScale = kNone;
    ExprId postOffset = kNone;
    FoldDest dest = FoldDest::kArgOut;
    int32_t argOut = kNone;    ///< kArgOut: host slot
    // kSramAddr: reuses mem/addr fields (addr over counters outside
    // the fold). kScalarStream: consumed via ScalarIn elsewhere.

    // kFlatMapSram
    ExprId pred = kNone;
    int32_t countArgOut = kNone; ///< optional: emit appended count

    // kStreamOut / kScatterOut
    MemId dram = kNone;
    ExprId dramAddr = kNone; ///< StreamOut: affine; ScatterOut: per lane
    ExprId scatterPred = kNone;
};

// --------------------------------------------------------------------
// Controller-tree nodes
// --------------------------------------------------------------------

enum class NodeKind : uint8_t { kOuter, kCompute, kTransfer };

struct TransferDesc
{
    bool load = true; ///< DRAM -> SRAM
    bool sparse = false;
    MemId dram = kNone;
    MemId sram = kNone;
    /** Dense: rows x rowWords tile; DRAM rows are dramRowStride words
     *  apart, SRAM rows sramRowStride apart. `base` is the DRAM word
     *  offset (affine over outer counters / args). */
    ExprId base = kNone;
    int64_t rows = 1;
    int64_t rowWords = 0;
    ArgId rowWordsArg = kNone; ///< dynamic inner length (optional)
    int64_t dramRowStride = 0;
    int64_t sramRowStride = 0;
    /** Sparse gather: word indices within `dram` come from `addrMem`
     *  (read linearly, `rowWords` of them; bound may be dynamic). */
    MemId addrMem = kNone;
    NodeId countSinkNode = kNone; ///< dynamic element count source
    int32_t countSinkIdx = kNone;
    int32_t countScale = 1;       ///< dynamic count multiplier
};

struct Node
{
    NodeKind kind = NodeKind::kOuter;
    std::string name;
    NodeId parent = kNone;

    // ---- kOuter ----
    CtrlScheme scheme = CtrlScheme::kSequential;
    std::vector<CtrId> ctrs; ///< outer loop indices (may be empty)
    std::vector<NodeId> children;
    uint32_t depthHint = 0;  ///< metapipe depth override (0 = #children)

    // ---- kCompute ----
    std::vector<CtrId> leafCtrs; ///< leaf counters, outermost first
    std::vector<StreamIn> streamIns;
    std::vector<ScalarIn> scalarIns;
    std::vector<Sink> sinks;

    // ---- kTransfer ----
    TransferDesc xfer;
};

// --------------------------------------------------------------------
// Program
// --------------------------------------------------------------------

struct ArgDecl
{
    std::string name;
    Word value = 0; ///< bound before compilation
};

struct Program
{
    std::string name;
    std::vector<ArgDecl> args;
    uint32_t numArgOuts = 0;
    std::vector<MemDecl> mems;
    std::vector<CtrDecl> ctrs;
    std::vector<Expr> exprs;
    std::vector<Node> nodes;
    NodeId root = kNone;

    const Node &node(NodeId id) const { return nodes[id]; }
    Node &node(NodeId id) { return nodes[id]; }

    /** Pretty-print the controller tree (debugging / docs). */
    std::string dump() const;
};

} // namespace plast::pir

#endif // PLAST_PIR_IR_HPP
