/**
 * @file
 * Textual serialization of PIR programs (`.pir` seed files).
 *
 * The format is a deterministic, line-oriented token stream covering
 * every field of pir::Program, so a parsed program is structurally
 * identical to the one written (write -> read -> write is a fixpoint).
 * The fuzzing harness (src/fuzz) uses it to persist shrunk failing
 * programs as standalone reproducers that replay as ordinary tests;
 * it is equally usable for dumping any Builder-constructed program.
 *
 * Enums are serialized as integers for parser stability; a pretty
 * `Program::dump()` rendering is appended as trailing '#' comments for
 * human readers and ignored on parse.
 */

#ifndef PLAST_PIR_SERIALIZE_HPP
#define PLAST_PIR_SERIALIZE_HPP

#include <iosfwd>
#include <string>

#include "pir/ir.hpp"

namespace plast::pir
{

/** Write `prog` as a .pir text document. */
void writeProgram(std::ostream &os, const Program &prog);

/** Convenience: writeProgram into a string. */
std::string programToText(const Program &prog);

/**
 * Parse a .pir document. Returns true on success; on failure returns
 * false and, when `err` is non-null, stores a diagnostic. The parsed
 * program is NOT validated — callers that execute it should run
 * pir::validateProgram first (the fuzz replay path does).
 */
bool readProgram(std::istream &is, Program &out, std::string *err = nullptr);

} // namespace plast::pir

#endif // PLAST_PIR_SERIALIZE_HPP
