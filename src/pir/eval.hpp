/**
 * @file
 * Reference evaluator for PIR programs: the golden functional model.
 *
 * The evaluator executes the controller tree sequentially but is
 * *wavefront-faithful*: vectorized counters iterate in blocks of
 * `lanes`, cross-lane folds use the same pairwise reduction-tree order
 * (with identity fill for masked lanes) as the PCU hardware, and
 * accumulators advance in wavefront order. Floating-point results
 * therefore match the cycle simulator bit for bit, which lets the
 * end-to-end tests require exact equality.
 *
 * The evaluator also counts ALU operations and DRAM word traffic;
 * these instrumented totals feed the FPGA baseline model (src/fpga).
 */

#ifndef PLAST_PIR_EVAL_HPP
#define PLAST_PIR_EVAL_HPP

#include <map>
#include <vector>

#include "pir/ir.hpp"
#include "sim/wavefront.hpp"

namespace plast::pir
{

class Evaluator
{
  public:
    explicit Evaluator(const Program &prog, uint32_t lanes = 16);

    /** Host access to DRAM buffer contents (sized at construction). */
    std::vector<Word> &dramBuf(MemId id);
    const std::vector<Word> &dramBuf(MemId id) const;

    /** SRAM contents after the run (inspection in tests). */
    const std::vector<Word> &sramBuf(MemId id) const;

    void run();

    /** Ordered values emitted to host argOut slot. */
    const std::vector<Word> &argOuts(int32_t slot) const;

    struct Counts
    {
        uint64_t aluOps = 0;       ///< FU-lane operations
        uint64_t dramWordsRead = 0;
        uint64_t dramWordsWritten = 0;
        uint64_t sramWordsRead = 0;
        uint64_t sramWordsWritten = 0;
        uint64_t wavefronts = 0;
    };
    const Counts &counts() const { return counts_; }

  private:
    struct ExprCache
    {
        std::vector<uint64_t> epoch;
        std::vector<std::array<Word, kMaxLanes>> val;
        uint64_t cur = 0;
    };

    int64_t boundOf(const CtrDecl &c) const;
    void execNode(NodeId id);
    void execTransfer(const Node &n);
    void execCompute(const Node &n);
    Word evalExpr(ExprId id, uint32_t lane, const Node &leaf,
                  const Wavefront &wf, ExprCache &cache);

    const Program &prog_;
    uint32_t lanes_;
    std::vector<std::vector<Word>> memData_; ///< per MemId storage
    std::vector<uint64_t> fifoFill_;         ///< FIFO-mode append cursor
    std::vector<int64_t> ctrVal_;            ///< outer counter values
    std::vector<std::vector<Word>> argOuts_;
    /** Latest scalar per (node,sink): fold-to-scalar / flatmap counts. */
    std::map<std::pair<NodeId, int32_t>, Word> lastScalar_;
    Counts counts_;
};

} // namespace plast::pir

#endif // PLAST_PIR_EVAL_HPP
