#include "pir/serialize.hpp"

#include <istream>
#include <ostream>
#include <sstream>

#include "base/logging.hpp"

namespace plast::pir
{

namespace
{

/** Names become single tokens: whitespace is folded to '_'. */
std::string
token(const std::string &name)
{
    std::string out = name.empty() ? std::string("_") : name;
    for (char &c : out) {
        if (c == ' ' || c == '\t' || c == '\n')
            c = '_';
    }
    return out;
}

void
writeSink(std::ostream &os, const Sink &s)
{
    os << "sink " << static_cast<int>(s.kind) << ' ' << s.value << ' '
       << s.mem << ' ' << s.addr << ' ' << (s.accumulate ? 1 : 0) << ' '
       << static_cast<int>(s.accumOp) << ' ' << static_cast<int>(s.foldOp)
       << ' ' << s.foldLevel << ' ' << (s.crossLane ? 1 : 0) << ' '
       << s.postScale << ' ' << s.postOffset << ' '
       << static_cast<int>(s.dest) << ' ' << s.argOut << ' ' << s.pred
       << ' ' << s.countArgOut << ' ' << s.dram << ' ' << s.dramAddr
       << ' ' << s.scatterPred << '\n';
}

/** Pull the next token, skipping '#' comments to end of line. */
bool
nextTok(std::istream &is, std::string &tok)
{
    while (is >> tok) {
        if (tok[0] != '#')
            return true;
        std::string rest;
        std::getline(is, rest);
    }
    return false;
}

/** Token-stream reader with keyword expectations and typed fields. */
struct Reader
{
    std::istream &is;
    std::string err;

    bool
    fail(const std::string &msg)
    {
        if (err.empty())
            err = msg;
        return false;
    }

    bool
    word(std::string &out)
    {
        if (!nextTok(is, out))
            return fail("unexpected end of input");
        return true;
    }

    bool
    expect(const char *kw)
    {
        std::string tok;
        if (!word(tok))
            return false;
        if (tok != kw)
            return fail(strfmt("expected '%s', got '%s'", kw,
                               tok.c_str()));
        return true;
    }

    template <typename T>
    bool
    num(T &out)
    {
        std::string tok;
        if (!word(tok))
            return false;
        errno = 0;
        char *end = nullptr;
        long long v = std::strtoll(tok.c_str(), &end, 0);
        if (end == tok.c_str() || *end != '\0' || errno != 0)
            return fail(strfmt("bad number '%s'", tok.c_str()));
        out = static_cast<T>(v);
        return true;
    }

    bool
    u32hex(uint32_t &out)
    {
        std::string tok;
        if (!word(tok))
            return false;
        errno = 0;
        char *end = nullptr;
        unsigned long long v = std::strtoull(tok.c_str(), &end, 0);
        if (end == tok.c_str() || *end != '\0' || errno != 0)
            return fail(strfmt("bad word '%s'", tok.c_str()));
        out = static_cast<uint32_t>(v);
        return true;
    }

    bool
    flag(bool &out)
    {
        int v = 0;
        if (!num(v))
            return false;
        out = v != 0;
        return true;
    }
};

bool
readSink(Reader &r, Sink &s)
{
    int kind = 0, accumOp = 0, foldOp = 0, dest = 0;
    if (!r.expect("sink") || !r.num(kind) || !r.num(s.value) ||
        !r.num(s.mem) || !r.num(s.addr) || !r.flag(s.accumulate) ||
        !r.num(accumOp) || !r.num(foldOp) || !r.num(s.foldLevel) ||
        !r.flag(s.crossLane) || !r.num(s.postScale) ||
        !r.num(s.postOffset) || !r.num(dest) || !r.num(s.argOut) ||
        !r.num(s.pred) || !r.num(s.countArgOut) || !r.num(s.dram) ||
        !r.num(s.dramAddr) || !r.num(s.scatterPred))
        return false;
    if (kind < 0 || kind > static_cast<int>(SinkKind::kScatterOut))
        return r.fail("sink kind out of range");
    if (dest < 0 || dest > static_cast<int>(FoldDest::kScalarStream))
        return r.fail("fold dest out of range");
    s.kind = static_cast<SinkKind>(kind);
    s.accumOp = static_cast<FuOp>(accumOp);
    s.foldOp = static_cast<FuOp>(foldOp);
    s.dest = static_cast<FoldDest>(dest);
    return true;
}

} // namespace

void
writeProgram(std::ostream &os, const Program &prog)
{
    os << "# pir seed file (see src/pir/serialize.hpp)\n";
    os << "pir 1\n";
    os << "program " << token(prog.name) << '\n';
    os << "argouts " << prog.numArgOuts << '\n';
    os << "args " << prog.args.size() << '\n';
    for (const ArgDecl &a : prog.args)
        os << "arg 0x" << std::hex << a.value << std::dec << ' '
           << token(a.name) << '\n';
    os << "mems " << prog.mems.size() << '\n';
    for (const MemDecl &m : prog.mems)
        os << "mem " << static_cast<int>(m.kind) << ' ' << m.sizeWords
           << ' ' << static_cast<int>(m.mode) << ' ' << m.nbufMin << ' '
           << m.clearAt << ' ' << token(m.name) << '\n';
    os << "ctrs " << prog.ctrs.size() << '\n';
    for (const CtrDecl &c : prog.ctrs)
        os << "ctr " << c.min << ' ' << c.step << ' ' << c.max << ' '
           << c.boundArg << ' ' << c.boundSinkNode << ' '
           << c.boundSinkIdx << ' ' << c.boundScale << ' '
           << (c.vectorized ? 1 : 0) << ' ' << token(c.name) << '\n';
    os << "exprs " << prog.exprs.size() << '\n';
    for (const Expr &e : prog.exprs)
        os << "expr " << static_cast<int>(e.kind) << " 0x" << std::hex
           << e.cval << std::dec << ' ' << e.arg << ' ' << e.ctr << ' '
           << static_cast<int>(e.alu) << ' ' << e.a << ' ' << e.b << ' '
           << e.c << ' ' << e.mem << ' ' << e.addr << ' ' << e.stream
           << ' ' << e.scalar << '\n';
    os << "nodes " << prog.nodes.size() << '\n';
    for (const Node &n : prog.nodes) {
        os << "node " << static_cast<int>(n.kind) << ' ' << n.parent
           << ' ' << token(n.name) << '\n';
        switch (n.kind) {
          case NodeKind::kOuter: {
            os << "outer " << static_cast<int>(n.scheme) << ' '
               << n.depthHint << " ctrs " << n.ctrs.size();
            for (CtrId c : n.ctrs)
                os << ' ' << c;
            os << " children " << n.children.size();
            for (NodeId c : n.children)
                os << ' ' << c;
            os << '\n';
            break;
          }
          case NodeKind::kCompute: {
            os << "leafctrs " << n.leafCtrs.size();
            for (CtrId c : n.leafCtrs)
                os << ' ' << c;
            os << '\n';
            os << "streamins " << n.streamIns.size();
            for (const StreamIn &si : n.streamIns)
                os << ' ' << si.dram << ' ' << si.addr;
            os << '\n';
            os << "scalarins " << n.scalarIns.size();
            for (const ScalarIn &si : n.scalarIns)
                os << ' ' << si.fromNode << ' ' << si.fromSink;
            os << '\n';
            os << "sinks " << n.sinks.size() << '\n';
            for (const Sink &s : n.sinks)
                writeSink(os, s);
            break;
          }
          case NodeKind::kTransfer: {
            const TransferDesc &x = n.xfer;
            os << "xfer " << (x.load ? 1 : 0) << ' '
               << (x.sparse ? 1 : 0) << ' ' << x.dram << ' ' << x.sram
               << ' ' << x.base << ' ' << x.rows << ' ' << x.rowWords
               << ' ' << x.rowWordsArg << ' ' << x.dramRowStride << ' '
               << x.sramRowStride << ' ' << x.addrMem << ' '
               << x.countSinkNode << ' ' << x.countSinkIdx << ' '
               << x.countScale << '\n';
            break;
          }
        }
    }
    os << "root " << prog.root << '\n';
    os << "end\n";
    if (prog.root != kNone &&
        prog.root < static_cast<NodeId>(prog.nodes.size())) {
        os << "#\n# controller tree:\n";
        std::istringstream pretty(prog.dump());
        std::string line;
        while (std::getline(pretty, line))
            os << "#   " << line << '\n';
    }
}

std::string
programToText(const Program &prog)
{
    std::ostringstream os;
    writeProgram(os, prog);
    return os.str();
}

bool
readProgram(std::istream &is, Program &out, std::string *err)
{
    Reader r{is, {}};
    out = Program{};
    auto bail = [&]() {
        if (err)
            *err = r.err.empty() ? "parse error" : r.err;
        return false;
    };

    int version = 0;
    if (!r.expect("pir") || !r.num(version))
        return bail();
    if (version != 1) {
        r.fail(strfmt("unsupported pir version %d", version));
        return bail();
    }
    if (!r.expect("program") || !r.word(out.name))
        return bail();
    if (!r.expect("argouts") || !r.num(out.numArgOuts))
        return bail();

    size_t count = 0;
    if (!r.expect("args") || !r.num(count))
        return bail();
    for (size_t i = 0; i < count; ++i) {
        ArgDecl a;
        if (!r.expect("arg") || !r.u32hex(a.value) || !r.word(a.name))
            return bail();
        out.args.push_back(a);
    }

    if (!r.expect("mems") || !r.num(count))
        return bail();
    for (size_t i = 0; i < count; ++i) {
        MemDecl m;
        int kind = 0, mode = 0;
        if (!r.expect("mem") || !r.num(kind) || !r.num(m.sizeWords) ||
            !r.num(mode) || !r.num(m.nbufMin) || !r.num(m.clearAt) ||
            !r.word(m.name))
            return bail();
        if (kind < 0 || kind > static_cast<int>(MemKind::kSram) ||
            mode < 0 || mode > static_cast<int>(BankingMode::kDup)) {
            r.fail("mem kind/mode out of range");
            return bail();
        }
        m.kind = static_cast<MemKind>(kind);
        m.mode = static_cast<BankingMode>(mode);
        out.mems.push_back(m);
    }

    if (!r.expect("ctrs") || !r.num(count))
        return bail();
    for (size_t i = 0; i < count; ++i) {
        CtrDecl c;
        if (!r.expect("ctr") || !r.num(c.min) || !r.num(c.step) ||
            !r.num(c.max) || !r.num(c.boundArg) ||
            !r.num(c.boundSinkNode) || !r.num(c.boundSinkIdx) ||
            !r.num(c.boundScale) || !r.flag(c.vectorized) ||
            !r.word(c.name))
            return bail();
        out.ctrs.push_back(c);
    }

    if (!r.expect("exprs") || !r.num(count))
        return bail();
    for (size_t i = 0; i < count; ++i) {
        Expr e;
        int kind = 0, alu = 0;
        if (!r.expect("expr") || !r.num(kind) || !r.u32hex(e.cval) ||
            !r.num(e.arg) || !r.num(e.ctr) || !r.num(alu) ||
            !r.num(e.a) || !r.num(e.b) || !r.num(e.c) || !r.num(e.mem) ||
            !r.num(e.addr) || !r.num(e.stream) || !r.num(e.scalar))
            return bail();
        if (kind < 0 || kind > static_cast<int>(ExprKind::kLaneId) ||
            alu < 0 || alu >= static_cast<int>(FuOp::kNumOps)) {
            r.fail("expr kind/op out of range");
            return bail();
        }
        e.kind = static_cast<ExprKind>(kind);
        e.alu = static_cast<FuOp>(alu);
        out.exprs.push_back(e);
    }

    if (!r.expect("nodes") || !r.num(count))
        return bail();
    for (size_t i = 0; i < count; ++i) {
        Node n;
        int kind = 0;
        if (!r.expect("node") || !r.num(kind) || !r.num(n.parent) ||
            !r.word(n.name))
            return bail();
        if (kind < 0 || kind > static_cast<int>(NodeKind::kTransfer)) {
            r.fail("node kind out of range");
            return bail();
        }
        n.kind = static_cast<NodeKind>(kind);
        switch (n.kind) {
          case NodeKind::kOuter: {
            int scheme = 0;
            size_t nc = 0;
            if (!r.expect("outer") || !r.num(scheme) ||
                !r.num(n.depthHint) || !r.expect("ctrs") || !r.num(nc))
                return bail();
            if (scheme < 0 ||
                scheme > static_cast<int>(CtrlScheme::kStream)) {
                r.fail("ctrl scheme out of range");
                return bail();
            }
            n.scheme = static_cast<CtrlScheme>(scheme);
            n.ctrs.resize(nc);
            for (CtrId &c : n.ctrs) {
                if (!r.num(c))
                    return bail();
            }
            if (!r.expect("children") || !r.num(nc))
                return bail();
            n.children.resize(nc);
            for (NodeId &c : n.children) {
                if (!r.num(c))
                    return bail();
            }
            break;
          }
          case NodeKind::kCompute: {
            size_t nc = 0;
            if (!r.expect("leafctrs") || !r.num(nc))
                return bail();
            n.leafCtrs.resize(nc);
            for (CtrId &c : n.leafCtrs) {
                if (!r.num(c))
                    return bail();
            }
            if (!r.expect("streamins") || !r.num(nc))
                return bail();
            n.streamIns.resize(nc);
            for (StreamIn &si : n.streamIns) {
                if (!r.num(si.dram) || !r.num(si.addr))
                    return bail();
            }
            if (!r.expect("scalarins") || !r.num(nc))
                return bail();
            n.scalarIns.resize(nc);
            for (ScalarIn &si : n.scalarIns) {
                if (!r.num(si.fromNode) || !r.num(si.fromSink))
                    return bail();
            }
            if (!r.expect("sinks") || !r.num(nc))
                return bail();
            n.sinks.resize(nc);
            for (Sink &s : n.sinks) {
                if (!readSink(r, s))
                    return bail();
            }
            break;
          }
          case NodeKind::kTransfer: {
            TransferDesc &x = n.xfer;
            if (!r.expect("xfer") || !r.flag(x.load) ||
                !r.flag(x.sparse) || !r.num(x.dram) || !r.num(x.sram) ||
                !r.num(x.base) || !r.num(x.rows) || !r.num(x.rowWords) ||
                !r.num(x.rowWordsArg) || !r.num(x.dramRowStride) ||
                !r.num(x.sramRowStride) || !r.num(x.addrMem) ||
                !r.num(x.countSinkNode) || !r.num(x.countSinkIdx) ||
                !r.num(x.countScale))
                return bail();
            break;
          }
        }
        out.nodes.push_back(std::move(n));
    }

    if (!r.expect("root") || !r.num(out.root) || !r.expect("end"))
        return bail();
    return true;
}

} // namespace plast::pir
