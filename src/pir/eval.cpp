#include "pir/eval.hpp"

#include "base/logging.hpp"
#include "sim/fuexec.hpp"

namespace plast::pir
{

Evaluator::Evaluator(const Program &prog, uint32_t lanes)
    : prog_(prog), lanes_(lanes)
{
    memData_.resize(prog.mems.size());
    fifoFill_.assign(prog.mems.size(), 0);
    for (size_t i = 0; i < prog.mems.size(); ++i)
        memData_[i].assign(prog.mems[i].sizeWords, 0);
    ctrVal_.assign(prog.ctrs.size(), 0);
    argOuts_.resize(prog.numArgOuts);
}

std::vector<Word> &
Evaluator::dramBuf(MemId id)
{
    panic_if(prog_.mems.at(id).kind != MemKind::kDram,
             "dramBuf on non-DRAM memory");
    return memData_[id];
}

const std::vector<Word> &
Evaluator::dramBuf(MemId id) const
{
    panic_if(prog_.mems.at(id).kind != MemKind::kDram,
             "dramBuf on non-DRAM memory");
    return memData_[id];
}

const std::vector<Word> &
Evaluator::sramBuf(MemId id) const
{
    return memData_.at(id);
}

const std::vector<Word> &
Evaluator::argOuts(int32_t slot) const
{
    return argOuts_.at(slot);
}

int64_t
Evaluator::boundOf(const CtrDecl &c) const
{
    if (c.boundArg != kNone)
        return wordToInt(prog_.args.at(c.boundArg).value);
    if (c.boundSinkNode != kNone) {
        auto it = lastScalar_.find({c.boundSinkNode, c.boundSinkIdx});
        int64_t v =
            it == lastScalar_.end() ? 0 : wordToInt(it->second);
        return v * c.boundScale;
    }
    return c.max;
}

void
Evaluator::run()
{
    execNode(prog_.root);
}

void
Evaluator::execNode(NodeId id)
{
    const Node &n = prog_.nodes[id];
    switch (n.kind) {
      case NodeKind::kOuter: {
        // Recurse over the outer counters; schemes (sequential /
        // metapipe / stream) are performance-only and share functional
        // semantics.
        struct Frame
        {
            const Node *node;
        };
        std::vector<int64_t> saved;
        saved.reserve(n.ctrs.size());
        // Iterative nested loop over n.ctrs.
        NodeId my_id = static_cast<NodeId>(&n - prog_.nodes.data());
        auto clear_gen_mems = [&]() {
            for (size_t m = 0; m < prog_.mems.size(); ++m) {
                if (prog_.mems[m].clearAt == my_id)
                    std::fill(memData_[m].begin(), memData_[m].end(), 0);
            }
        };
        std::vector<int64_t> idx(n.ctrs.size());
        size_t depth = 0;
        if (n.ctrs.empty()) {
            clear_gen_mems();
            for (NodeId c : n.children)
                execNode(c);
            return;
        }
        // Initialize.
        idx[0] = prog_.ctrs[n.ctrs[0]].min;
        while (true) {
            const CtrDecl &cd = prog_.ctrs[n.ctrs[depth]];
            if (idx[depth] >= boundOf(cd)) {
                if (depth == 0)
                    break;
                --depth;
                idx[depth] += prog_.ctrs[n.ctrs[depth]].step;
                continue;
            }
            ctrVal_[n.ctrs[depth]] = idx[depth];
            if (depth + 1 < n.ctrs.size()) {
                ++depth;
                idx[depth] = prog_.ctrs[n.ctrs[depth]].min;
                continue;
            }
            clear_gen_mems();
            for (NodeId c : n.children)
                execNode(c);
            idx[depth] += cd.step;
        }
        return;
      }
      case NodeKind::kTransfer:
        execTransfer(n);
        return;
      case NodeKind::kCompute:
        execCompute(n);
        return;
    }
}

void
Evaluator::execTransfer(const Node &n)
{
    const TransferDesc &x = n.xfer;
    ExprCache cache;
    cache.epoch.assign(prog_.exprs.size() * kMaxLanes, 0);
    cache.val.resize(prog_.exprs.size());
    cache.cur = 1;
    Wavefront wf;
    wf.mask = 1;

    std::vector<Word> &dram = memData_[x.dram];
    if (x.sparse) {
        int64_t count = x.rowWords;
        if (x.countSinkNode != kNone) {
            auto it = lastScalar_.find({x.countSinkNode, x.countSinkIdx});
            count = it == lastScalar_.end() ? 0 : wordToInt(it->second);
            count *= x.countScale;
        }
        std::vector<Word> &addrs = memData_[x.addrMem];
        std::vector<Word> &sramv = memData_[x.sram];
        for (int64_t i = 0; i < count; ++i) {
            Word a = addrs.at(static_cast<size_t>(i));
            sramv.at(static_cast<size_t>(i)) = dram.at(a);
            ++counts_.dramWordsRead;
            ++counts_.sramWordsWritten;
        }
        return;
    }

    int64_t base = wordToInt(evalExpr(x.base, 0, n, wf, cache));
    int64_t row_words = x.rowWordsArg != kNone
                            ? wordToInt(prog_.args[x.rowWordsArg].value)
                            : x.rowWords;
    std::vector<Word> &sramv = memData_[x.sram];
    for (int64_t r = 0; r < x.rows; ++r) {
        for (int64_t w = 0; w < row_words; ++w) {
            size_t di = static_cast<size_t>(base + r * x.dramRowStride + w);
            size_t si = static_cast<size_t>(r * x.sramRowStride + w);
            if (x.load) {
                sramv.at(si) = dram.at(di);
                ++counts_.dramWordsRead;
                ++counts_.sramWordsWritten;
            } else {
                dram.at(di) = sramv.at(si);
                ++counts_.dramWordsWritten;
                ++counts_.sramWordsRead;
            }
        }
    }
}

Word
Evaluator::evalExpr(ExprId id, uint32_t lane, const Node &leaf,
                    const Wavefront &wf, ExprCache &cache)
{
    size_t key = static_cast<size_t>(id) * kMaxLanes + lane;
    if (cache.epoch[key] == cache.cur)
        return cache.val[id][lane];
    const Expr &e = prog_.exprs[id];
    Word v = 0;
    switch (e.kind) {
      case ExprKind::kConst:
        v = e.cval;
        break;
      case ExprKind::kArg:
        v = prog_.args[e.arg].value;
        break;
      case ExprKind::kCtr: {
        // Leaf counter? Use the wavefront (vectorized lanes); else the
        // enclosing outer-controller environment.
        int level = -1;
        for (size_t i = 0; i < leaf.leafCtrs.size(); ++i) {
            if (leaf.leafCtrs[i] == e.ctr) {
                level = static_cast<int>(i);
                break;
            }
        }
        v = level >= 0 ? static_cast<Word>(
                             wf.ctrLane(static_cast<uint8_t>(level), lane))
                       : static_cast<Word>(ctrVal_[e.ctr]);
        break;
      }
      case ExprKind::kAlu: {
        Word a = e.a != kNone ? evalExpr(e.a, lane, leaf, wf, cache) : 0;
        Word b = e.b != kNone ? evalExpr(e.b, lane, leaf, wf, cache) : 0;
        Word c = e.c != kNone ? evalExpr(e.c, lane, leaf, wf, cache) : 0;
        v = fuExec(e.alu, a, b, c);
        ++counts_.aluOps;
        break;
      }
      case ExprKind::kLoadSram: {
        Word a = evalExpr(e.addr, lane, leaf, wf, cache);
        v = memData_[e.mem].at(a);
        ++counts_.sramWordsRead;
        break;
      }
      case ExprKind::kStreamIn: {
        const StreamIn &si = leaf.streamIns.at(e.stream);
        Word a = evalExpr(si.addr, lane, leaf, wf, cache);
        v = memData_[si.dram].at(a);
        ++counts_.dramWordsRead;
        break;
      }
      case ExprKind::kScalarIn: {
        const ScalarIn &si = leaf.scalarIns.at(e.scalar);
        auto it = lastScalar_.find({si.fromNode, si.fromSink});
        v = it == lastScalar_.end() ? 0 : it->second;
        break;
      }
      case ExprKind::kLaneId:
        v = lane;
        break;
    }
    cache.epoch[key] = cache.cur;
    cache.val[id][lane] = v;
    return v;
}

void
Evaluator::execCompute(const Node &n)
{
    // Build the leaf counter chain.
    ChainCfg ccfg;
    std::vector<int64_t> bounds;
    for (CtrId cid : n.leafCtrs) {
        const CtrDecl &cd = prog_.ctrs[cid];
        CounterCfg cc;
        cc.min = cd.min;
        cc.step = cd.step;
        cc.max = 0;
        cc.vectorized = cd.vectorized;
        ccfg.ctrs.push_back(cc);
        bounds.push_back(boundOf(cd));
    }
    ChainState chain;
    chain.configure(ccfg, lanes_);
    chain.reset(bounds);

    // Per-fold accumulators.
    struct FoldState
    {
        std::array<Word, kMaxLanes> acc{};
        int levelIdx = 0;
    };
    std::vector<FoldState> folds(n.sinks.size());
    std::vector<uint64_t> flatCounts(n.sinks.size(), 0);
    for (size_t s = 0; s < n.sinks.size(); ++s) {
        const Sink &sk = n.sinks[s];
        if (sk.kind == SinkKind::kFold) {
            int idx = -1;
            for (size_t i = 0; i < n.leafCtrs.size(); ++i) {
                if (n.leafCtrs[i] == sk.foldLevel)
                    idx = static_cast<int>(i);
            }
            fatal_if(idx < 0, "fold level not among leaf counters in %s",
                     n.name.c_str());
            folds[s].levelIdx = idx;
        }
        if (sk.kind == SinkKind::kFlatMapSram)
            fifoFill_[sk.mem] = 0; // fresh append region per run
        // Default accumulation generation: fresh per writer run.
        bool accum = (sk.kind == SinkKind::kStoreSram && sk.accumulate) ||
                     (sk.kind == SinkKind::kFold &&
                      sk.dest == FoldDest::kSramAddr && sk.accumulate);
        if (accum && prog_.mems[sk.mem].clearAt == kNone &&
            prog_.mems[sk.mem].clearAt != kNeverClear)
            std::fill(memData_[sk.mem].begin(), memData_[sk.mem].end(),
                      0);
    }

    ExprCache cache;
    cache.epoch.assign(prog_.exprs.size() * kMaxLanes, 0);
    cache.val.resize(prog_.exprs.size());
    cache.cur = 0;

    while (!chain.done()) {
        Wavefront wf;
        chain.issueInto(wf);
        ++counts_.wavefronts;
        ++cache.cur;

        for (size_t s = 0; s < n.sinks.size(); ++s) {
            const Sink &sk = n.sinks[s];
            switch (sk.kind) {
              case SinkKind::kStoreSram: {
                // FIFO-mode memories are queues: the sequential
                // evaluator keeps every element that streams through
                // (index = enqueue position), so the later consumer
                // observes the same order as the hardware pops.
                bool fifo =
                    prog_.mems[sk.mem].mode == BankingMode::kFifo;
                for (uint32_t l = 0; l < lanes_; ++l) {
                    if (!wf.valid(l))
                        continue;
                    Word a = evalExpr(sk.addr, l, n, wf, cache);
                    Word v = evalExpr(sk.value, l, n, wf, cache);
                    std::vector<Word> &m = memData_[sk.mem];
                    if (fifo && a >= m.size())
                        m.resize(a + 1, 0);
                    if (sk.accumulate)
                        v = fuExec(sk.accumOp, m.at(a), v, 0);
                    m.at(a) = v;
                    ++counts_.sramWordsWritten;
                }
                break;
              }
              case SinkKind::kFold: {
                FoldState &fs = folds[s];
                uint8_t lvl = static_cast<uint8_t>(fs.levelIdx);
                if (wf.firstAtLevel(lvl))
                    fs.acc.fill(fuOpIdentity(sk.foldOp));
                if (sk.crossLane) {
                    // Pairwise tree with identity fill — same order as
                    // the PCU reduction network.
                    std::array<Word, kMaxLanes> v{};
                    for (uint32_t l = 0; l < lanes_; ++l) {
                        v[l] = wf.valid(l)
                                   ? evalExpr(sk.value, l, n, wf, cache)
                                   : fuOpIdentity(sk.foldOp);
                    }
                    for (uint32_t dist = 1; dist < lanes_; dist *= 2) {
                        for (uint32_t i = 0; i + dist < lanes_;
                             i += 2 * dist)
                            v[i] = fuExec(sk.foldOp, v[i],
                                           v[i + dist], 0);
                    }
                    fs.acc[0] = fuExec(sk.foldOp, fs.acc[0], v[0], 0);
                } else {
                    for (uint32_t l = 0; l < lanes_; ++l) {
                        if (wf.valid(l)) {
                            fs.acc[l] = fuExec(
                                sk.foldOp, fs.acc[l],
                                evalExpr(sk.value, l, n, wf, cache), 0);
                        }
                    }
                }
                auto post = [&](Word v, uint32_t lane) -> Word {
                    if (sk.postScale == kNone && sk.postOffset == kNone)
                        return v;
                    Word sc = sk.postScale != kNone
                                  ? evalExpr(sk.postScale, lane, n, wf,
                                             cache)
                                  : floatToWord(1.0f);
                    Word of = sk.postOffset != kNone
                                  ? evalExpr(sk.postOffset, lane, n, wf,
                                             cache)
                                  : floatToWord(0.0f);
                    return fuExec(FuOp::kFMA, v, sc, of);
                };
                if (wf.lastAtLevel(lvl)) {
                    if (sk.dest == FoldDest::kArgOut) {
                        argOuts_.at(sk.argOut).push_back(
                            post(fs.acc[0], 0));
                    } else if (sk.dest == FoldDest::kScalarStream) {
                        lastScalar_[{static_cast<NodeId>(&n -
                                                         prog_.nodes
                                                             .data()),
                                     static_cast<int32_t>(s)}] =
                            post(fs.acc[0], 0);
                    } else if (sk.crossLane) {
                        Word a = evalExpr(sk.addr, 0, n, wf, cache);
                        std::vector<Word> &m = memData_[sk.mem];
                        Word v = post(fs.acc[0], 0);
                        if (sk.accumulate)
                            v = fuExec(sk.accumOp, m.at(a), v, 0);
                        m.at(a) = v;
                        ++counts_.sramWordsWritten;
                    } else {
                        for (uint32_t l = 0; l < lanes_; ++l) {
                            if (!wf.valid(l))
                                continue;
                            Word a = evalExpr(sk.addr, l, n, wf, cache);
                            std::vector<Word> &m = memData_[sk.mem];
                            Word v = post(fs.acc[l], l);
                            if (sk.accumulate)
                                v = fuExec(sk.accumOp, m.at(a), v, 0);
                            m.at(a) = v;
                            ++counts_.sramWordsWritten;
                        }
                    }
                }
                break;
              }
              case SinkKind::kFlatMapSram: {
                for (uint32_t l = 0; l < lanes_; ++l) {
                    if (!wf.valid(l))
                        continue;
                    if (evalExpr(sk.pred, l, n, wf, cache) == 0)
                        continue;
                    Word v = evalExpr(sk.value, l, n, wf, cache);
                    memData_[sk.mem].at(fifoFill_[sk.mem]++) = v;
                    ++flatCounts[s];
                    ++counts_.sramWordsWritten;
                }
                break;
              }
              case SinkKind::kStreamOut: {
                for (uint32_t l = 0; l < lanes_; ++l) {
                    if (!wf.valid(l))
                        continue;
                    Word a = evalExpr(sk.dramAddr, l, n, wf, cache);
                    memData_[sk.dram].at(a) =
                        evalExpr(sk.value, l, n, wf, cache);
                    ++counts_.dramWordsWritten;
                }
                break;
              }
              case SinkKind::kScatterOut: {
                for (uint32_t l = 0; l < lanes_; ++l) {
                    if (!wf.valid(l))
                        continue;
                    if (sk.scatterPred != kNone &&
                        evalExpr(sk.scatterPred, l, n, wf, cache) == 0)
                        continue;
                    Word a = evalExpr(sk.dramAddr, l, n, wf, cache);
                    memData_[sk.dram].at(a) =
                        evalExpr(sk.value, l, n, wf, cache);
                    ++counts_.dramWordsWritten;
                }
                break;
              }
            }
        }
    }

    // End-of-run FlatMap bookkeeping.
    NodeId my_id = static_cast<NodeId>(&n - prog_.nodes.data());
    for (size_t s = 0; s < n.sinks.size(); ++s) {
        const Sink &sk = n.sinks[s];
        if (sk.kind != SinkKind::kFlatMapSram)
            continue;
        Word count = static_cast<Word>(flatCounts[s]);
        lastScalar_[{my_id, static_cast<int32_t>(s)}] = count;
        if (sk.countArgOut != kNone)
            argOuts_.at(sk.countArgOut).push_back(count);
    }
}

} // namespace plast::pir
