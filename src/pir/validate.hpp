/**
 * @file
 * Structural validation of PIR programs. Catches the program shapes
 * the compiler cannot map — before lowering — with actionable
 * diagnostics: counter misuse (multiple or non-innermost vectorized
 * counters, fold levels outside the leaf), memory misuse (too many
 * writers, DRAM loads via load()), per-lane folds whose vector
 * dimension spans more than one wavefront, and malformed trees.
 */

#ifndef PLAST_PIR_VALIDATE_HPP
#define PLAST_PIR_VALIDATE_HPP

#include <string>
#include <vector>

#include "pir/ir.hpp"

namespace plast::pir
{

/** All problems found (empty = valid). */
std::vector<std::string> validateProgram(const Program &prog,
                                         uint32_t lanes = 16);

} // namespace plast::pir

#endif // PLAST_PIR_VALIDATE_HPP
