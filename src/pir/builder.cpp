#include "pir/builder.hpp"

#include "base/logging.hpp"
#include "pir/validate.hpp"

namespace plast::pir
{

Builder::Builder(std::string name)
{
    prog_.name = std::move(name);
}

ArgId
Builder::arg(const std::string &name, Word value)
{
    prog_.args.push_back({name, value});
    return static_cast<ArgId>(prog_.args.size() - 1);
}

void
Builder::bindArg(ArgId id, Word value)
{
    prog_.args.at(id).value = value;
}

int32_t
Builder::argOut()
{
    return static_cast<int32_t>(prog_.numArgOuts++);
}

MemId
Builder::dram(const std::string &name, uint64_t words)
{
    MemDecl m;
    m.kind = MemKind::kDram;
    m.name = name;
    m.sizeWords = words;
    prog_.mems.push_back(m);
    return static_cast<MemId>(prog_.mems.size() - 1);
}

MemId
Builder::sram(const std::string &name, uint64_t words, BankingMode mode,
              uint32_t nbufMin)
{
    MemDecl m;
    m.kind = MemKind::kSram;
    m.name = name;
    m.sizeWords = words;
    m.mode = mode;
    m.nbufMin = nbufMin;
    prog_.mems.push_back(m);
    return static_cast<MemId>(prog_.mems.size() - 1);
}

CtrId
Builder::ctr(const std::string &name, int64_t min, int64_t max,
             int64_t step, bool vectorized)
{
    CtrDecl c;
    c.name = name;
    c.min = min;
    c.max = max;
    c.step = step;
    c.vectorized = vectorized;
    prog_.ctrs.push_back(c);
    return static_cast<CtrId>(prog_.ctrs.size() - 1);
}

CtrId
Builder::ctrArg(const std::string &name, ArgId bound, int64_t min,
                int64_t step, bool vectorized)
{
    CtrId id = ctr(name, min, 0, step, vectorized);
    prog_.ctrs[id].boundArg = bound;
    return id;
}

CtrId
Builder::ctrDyn(const std::string &name, NodeId producer, int32_t sink,
                int64_t min, int64_t step, bool vectorized,
                int32_t boundScale)
{
    CtrId id = ctr(name, min, 0, step, vectorized);
    prog_.ctrs[id].boundSinkNode = producer;
    prog_.ctrs[id].boundSinkIdx = sink;
    prog_.ctrs[id].boundScale = boundScale;
    return id;
}

ExprId
Builder::imm(Word w)
{
    Expr e;
    e.kind = ExprKind::kConst;
    e.cval = w;
    prog_.exprs.push_back(e);
    return static_cast<ExprId>(prog_.exprs.size() - 1);
}

ExprId
Builder::argE(ArgId a)
{
    Expr e;
    e.kind = ExprKind::kArg;
    e.arg = a;
    prog_.exprs.push_back(e);
    return static_cast<ExprId>(prog_.exprs.size() - 1);
}

ExprId
Builder::ctrE(CtrId c)
{
    Expr e;
    e.kind = ExprKind::kCtr;
    e.ctr = c;
    prog_.exprs.push_back(e);
    return static_cast<ExprId>(prog_.exprs.size() - 1);
}

ExprId
Builder::laneId()
{
    Expr e;
    e.kind = ExprKind::kLaneId;
    prog_.exprs.push_back(e);
    return static_cast<ExprId>(prog_.exprs.size() - 1);
}

ExprId
Builder::alu(FuOp op, ExprId a, ExprId b, ExprId c)
{
    Expr e;
    e.kind = ExprKind::kAlu;
    e.alu = op;
    e.a = a;
    e.b = b;
    e.c = c;
    prog_.exprs.push_back(e);
    return static_cast<ExprId>(prog_.exprs.size() - 1);
}

ExprId
Builder::load(MemId mem, ExprId addr)
{
    fatal_if(prog_.mems.at(mem).kind != MemKind::kSram,
             "load() targets SRAM; use streamIns for DRAM");
    Expr e;
    e.kind = ExprKind::kLoadSram;
    e.mem = mem;
    e.addr = addr;
    prog_.exprs.push_back(e);
    return static_cast<ExprId>(prog_.exprs.size() - 1);
}

ExprId
Builder::streamRef(int32_t idx)
{
    Expr e;
    e.kind = ExprKind::kStreamIn;
    e.stream = idx;
    prog_.exprs.push_back(e);
    return static_cast<ExprId>(prog_.exprs.size() - 1);
}

ExprId
Builder::scalarRef(int32_t idx)
{
    Expr e;
    e.kind = ExprKind::kScalarIn;
    e.scalar = idx;
    prog_.exprs.push_back(e);
    return static_cast<ExprId>(prog_.exprs.size() - 1);
}

NodeId
Builder::outer(const std::string &name, CtrlScheme scheme,
               std::vector<CtrId> ctrs, NodeId parent, uint32_t depthHint)
{
    Node n;
    n.kind = NodeKind::kOuter;
    n.name = name;
    n.scheme = scheme;
    n.ctrs = std::move(ctrs);
    n.parent = parent;
    n.depthHint = depthHint;
    prog_.nodes.push_back(n);
    NodeId id = static_cast<NodeId>(prog_.nodes.size() - 1);
    if (parent != kNone)
        prog_.nodes[parent].children.push_back(id);
    return id;
}

NodeId
Builder::compute(const std::string &name, NodeId parent,
                 std::vector<CtrId> leafCtrs, std::vector<StreamIn> streamIns,
                 std::vector<ScalarIn> scalarIns, std::vector<Sink> sinks)
{
    Node n;
    n.kind = NodeKind::kCompute;
    n.name = name;
    n.parent = parent;
    n.leafCtrs = std::move(leafCtrs);
    n.streamIns = std::move(streamIns);
    n.scalarIns = std::move(scalarIns);
    n.sinks = std::move(sinks);
    prog_.nodes.push_back(n);
    NodeId id = static_cast<NodeId>(prog_.nodes.size() - 1);
    fatal_if(parent == kNone, "compute leaf needs a parent");
    prog_.nodes[parent].children.push_back(id);
    return id;
}

NodeId
Builder::loadTile(const std::string &name, NodeId parent, MemId dram,
                  MemId sram, ExprId base, int64_t rows, int64_t rowWords,
                  int64_t dramRowStride, int64_t sramRowStride)
{
    Node n;
    n.kind = NodeKind::kTransfer;
    n.name = name;
    n.parent = parent;
    n.xfer.load = true;
    n.xfer.dram = dram;
    n.xfer.sram = sram;
    n.xfer.base = base;
    n.xfer.rows = rows;
    n.xfer.rowWords = rowWords;
    n.xfer.dramRowStride = dramRowStride;
    n.xfer.sramRowStride = sramRowStride < 0 ? rowWords : sramRowStride;
    prog_.nodes.push_back(n);
    NodeId id = static_cast<NodeId>(prog_.nodes.size() - 1);
    fatal_if(parent == kNone, "transfer leaf needs a parent");
    prog_.nodes[parent].children.push_back(id);
    return id;
}

NodeId
Builder::storeTile(const std::string &name, NodeId parent, MemId dram,
                   MemId sram, ExprId base, int64_t rows, int64_t rowWords,
                   int64_t dramRowStride, int64_t sramRowStride)
{
    NodeId id = loadTile(name, parent, dram, sram, base, rows, rowWords,
                         dramRowStride, sramRowStride);
    prog_.nodes[id].xfer.load = false;
    return id;
}

NodeId
Builder::gather(const std::string &name, NodeId parent, MemId dram,
                MemId addrMem, MemId sram, int64_t count,
                NodeId countSinkNode, int32_t countSinkIdx,
                int32_t countScale)
{
    Node n;
    n.kind = NodeKind::kTransfer;
    n.name = name;
    n.parent = parent;
    n.xfer.load = true;
    n.xfer.sparse = true;
    n.xfer.dram = dram;
    n.xfer.sram = sram;
    n.xfer.addrMem = addrMem;
    n.xfer.rowWords = count;
    n.xfer.countSinkNode = countSinkNode;
    n.xfer.countSinkIdx = countSinkIdx;
    n.xfer.countScale = countScale;
    prog_.nodes.push_back(n);
    NodeId id = static_cast<NodeId>(prog_.nodes.size() - 1);
    fatal_if(parent == kNone, "transfer leaf needs a parent");
    prog_.nodes[parent].children.push_back(id);
    return id;
}

Sink
Builder::storeSram(MemId mem, ExprId addr, ExprId value, bool accumulate,
                   FuOp accumOp)
{
    Sink s;
    s.kind = SinkKind::kStoreSram;
    s.mem = mem;
    s.addr = addr;
    s.value = value;
    s.accumulate = accumulate;
    s.accumOp = accumOp;
    return s;
}

Sink
Builder::fold(FuOp op, ExprId value, CtrId level, int32_t argOut)
{
    Sink s;
    s.kind = SinkKind::kFold;
    s.foldOp = op;
    s.value = value;
    s.foldLevel = level;
    s.dest = FoldDest::kArgOut;
    s.argOut = argOut;
    return s;
}

Sink
Builder::foldToSram(FuOp op, ExprId value, CtrId level, MemId mem,
                    ExprId addr, bool accumulate, bool crossLane)
{
    Sink s;
    s.kind = SinkKind::kFold;
    s.foldOp = op;
    s.value = value;
    s.foldLevel = level;
    s.crossLane = crossLane;
    s.dest = FoldDest::kSramAddr;
    s.mem = mem;
    s.addr = addr;
    s.accumulate = accumulate;
    s.accumOp = op;
    return s;
}

Sink
Builder::foldToScalar(FuOp op, ExprId value, CtrId level)
{
    Sink s;
    s.kind = SinkKind::kFold;
    s.foldOp = op;
    s.value = value;
    s.foldLevel = level;
    s.dest = FoldDest::kScalarStream;
    return s;
}

Sink
Builder::flatMap(MemId mem, ExprId value, ExprId pred, int32_t countArgOut)
{
    Sink s;
    s.kind = SinkKind::kFlatMapSram;
    s.mem = mem;
    s.value = value;
    s.pred = pred;
    s.countArgOut = countArgOut;
    return s;
}

Sink
Builder::streamOut(MemId dram, ExprId dramAddr, ExprId value)
{
    Sink s;
    s.kind = SinkKind::kStreamOut;
    s.dram = dram;
    s.dramAddr = dramAddr;
    s.value = value;
    return s;
}

Sink
Builder::scatterOut(MemId dram, ExprId dramAddr, ExprId value, ExprId pred)
{
    Sink s;
    s.kind = SinkKind::kScatterOut;
    s.dram = dram;
    s.dramAddr = dramAddr;
    s.value = value;
    s.scatterPred = pred;
    return s;
}

Program
Builder::finish(NodeId root)
{
    fatal_if(root == kNone, "program has no root");
    fatal_if(prog_.nodes.at(root).kind != NodeKind::kOuter,
             "root must be an outer controller");
    prog_.root = root;
    validate();
    std::vector<std::string> problems = validateProgram(prog_);
    if (!problems.empty()) {
        for (const std::string &p : problems)
            warn("%s: %s", prog_.name.c_str(), p.c_str());
        fatal("program '%s' failed validation (%zu problems)",
              prog_.name.c_str(), problems.size());
    }
    return prog_;
}

void
Builder::validate() const
{
    for (size_t i = 0; i < prog_.nodes.size(); ++i) {
        const Node &n = prog_.nodes[i];
        if (n.kind == NodeKind::kOuter) {
            fatal_if(n.children.empty() && prog_.root != kNone &&
                         static_cast<NodeId>(i) == prog_.root,
                     "root controller '%s' has no children",
                     n.name.c_str());
        }
        if (n.kind == NodeKind::kCompute) {
            fatal_if(n.sinks.empty(), "compute leaf '%s' has no sinks",
                     n.name.c_str());
            fatal_if(n.leafCtrs.empty(), "compute leaf '%s' needs counters",
                     n.name.c_str());
        }
    }
    for (const CtrDecl &c : prog_.ctrs) {
        fatal_if(c.step <= 0, "counter '%s' needs positive step",
                 c.name.c_str());
    }
}

std::string
Program::dump() const
{
    std::string out = strfmt("program %s\n", name.c_str());
    struct Rec
    {
        NodeId id;
        int depth;
    };
    std::vector<Rec> stack{{root, 1}};
    while (!stack.empty()) {
        Rec r = stack.back();
        stack.pop_back();
        const Node &n = nodes[r.id];
        out += std::string(static_cast<size_t>(r.depth) * 2, ' ');
        switch (n.kind) {
          case NodeKind::kOuter:
            out += strfmt("%s [%s", n.name.c_str(),
                          ctrlSchemeName(n.scheme).c_str());
            for (CtrId c : n.ctrs)
                out += strfmt(" %s", ctrs[c].name.c_str());
            out += "]\n";
            for (auto it = n.children.rbegin(); it != n.children.rend();
                 ++it)
                stack.push_back({*it, r.depth + 1});
            break;
          case NodeKind::kCompute:
            out += strfmt("compute %s (%zu ctrs, %zu sinks)\n",
                          n.name.c_str(), n.leafCtrs.size(),
                          n.sinks.size());
            break;
          case NodeKind::kTransfer:
            out += strfmt("%s %s %s<->%s\n",
                          n.xfer.sparse ? "gather" : "tile",
                          n.name.c_str(),
                          mems[n.xfer.dram].name.c_str(),
                          n.xfer.sram != kNone
                              ? mems[n.xfer.sram].name.c_str()
                              : "-");
            break;
        }
    }
    return out;
}

} // namespace plast::pir
