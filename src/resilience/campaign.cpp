#include "resilience/campaign.hpp"

#include <functional>
#include <ostream>

#include "apps/apps.hpp"
#include "base/logging.hpp"

namespace plast::resilience
{

namespace
{

const char *
mixName(FaultMix m)
{
    switch (m) {
      case FaultMix::kAll:
        return "all";
      case FaultMix::kProtected:
        return "protected";
      case FaultMix::kDatapath:
        return "datapath";
    }
    return "?";
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strfmt("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

} // namespace

CampaignResult
runCampaign(const CampaignOptions &opts)
{
    const auto &all = apps::allApps();
    std::vector<const apps::AppSpec *> selected;
    if (opts.apps.empty()) {
        for (const auto &spec : all)
            selected.push_back(&spec);
    } else {
        for (const auto &name : opts.apps) {
            const apps::AppSpec *found = nullptr;
            for (const auto &spec : all) {
                if (spec.name == name)
                    found = &spec;
            }
            fatal_if(!found, "unknown app '%s'", name.c_str());
            selected.push_back(found);
        }
    }

    ArchParams params = ArchParams::plasticineFinal();
    params.pmu.ecc = opts.ecc;
    params.dram.ecc = opts.ecc;

    CampaignResult out;
    for (const apps::AppSpec *spec : selected) {
        apps::AppInstance inst = spec->make(apps::Scale::kTiny);

        // Stage inputs once (apps load through a Runner) and compile to
        // learn the placement the fault plans target.
        Runner stage(inst.prog, params);
        inst.load(stage);

        ResilienceOptions ropts = opts.resilience;
        if (opts.maxCycles)
            ropts.maxCycles = opts.maxCycles;
        ResilientRunner rr(inst.prog, params, ropts);
        rr.setInputs(stage.hostBuffers());

        auto record = [&](uint64_t seed, ResilienceReport rep) {
            CampaignRun run;
            run.app = inst.name;
            run.seed = seed;
            run.unexplainedSdc =
                rep.cls == RunClass::kSilentCorruption && opts.ecc &&
                !rep.explainedSdc();
            out.byClass[static_cast<size_t>(rep.cls)]++;
            out.unexplainedSdc += run.unexplainedSdc ? 1 : 0;
            run.report = std::move(rep);
            out.runs.push_back(std::move(run));
        };

        Status cst = stage.tryCompile();
        Status gst = cst.ok() ? rr.runGolden() : cst;
        if (!gst.ok()) {
            // Record the failure once and move on: with no golden
            // horizon there is nothing meaningful to inject into.
            ResilienceReport rep;
            rep.cls = RunClass::kCompileError;
            rep.finalStatus = gst;
            rep.detail = gst.message();
            record(opts.seed, std::move(rep));
            continue;
        }

        const uint64_t appSalt = std::hash<std::string>{}(inst.name);
        for (uint32_t r = 0; r < opts.runsPerApp; ++r) {
            uint64_t seed =
                opts.seed + appSalt * 0x100000001b3ull + r * 8191;
            FaultPlan plan = FaultPlan::random(
                seed, opts.rate, rr.goldenCycles(),
                stage.mapResult().fabric, opts.mix, opts.includeHard);
            record(seed, rr.run(plan));
        }
    }
    return out;
}

void
CampaignResult::writeJson(std::ostream &os,
                          const CampaignOptions &opts) const
{
    os << "{\n";
    os << "  \"config\": {"
       << "\"rate\": " << opts.rate << ", \"seed\": " << opts.seed
       << ", \"runsPerApp\": " << opts.runsPerApp
       << ", \"ecc\": " << (opts.ecc ? "true" : "false")
       << ", \"hard\": " << (opts.includeHard ? "true" : "false")
       << ", \"kinds\": \"" << mixName(opts.mix) << "\"},\n";
    os << "  \"runs\": [\n";
    for (size_t i = 0; i < runs.size(); ++i) {
        const CampaignRun &run = runs[i];
        const ResilienceReport &rep = run.report;
        os << "    {\"app\": \"" << jsonEscape(run.app) << "\""
           << ", \"seed\": " << run.seed << ", \"class\": \""
           << runClassName(rep.cls) << "\""
           << ", \"cycles\": " << rep.cycles
           << ", \"eventsPlanned\": " << rep.eventsPlanned
           << ", \"eventsFired\": " << rep.eventsFired
           << ", \"firedUnprotected\": " << rep.firedUnprotected
           << ", \"eccCorrected\": " << rep.eccCorrected
           << ", \"dramCorrected\": " << rep.dramCorrected
           << ", \"dramRetries\": " << rep.dramRetries
           << ", \"rollbacks\": " << rep.rollbacks
           << ", \"restarts\": " << rep.restarts
           << ", \"remaps\": " << rep.remaps << ", \"unexplainedSdc\": "
           << (run.unexplainedSdc ? "true" : "false")
           << ", \"status\": \""
           << jsonEscape(rep.finalStatus.ok() ? "ok"
                                              : rep.finalStatus.message())
           << "\""
           << ", \"detail\": \"" << jsonEscape(rep.detail) << "\"}"
           << (i + 1 < runs.size() ? "," : "") << "\n";
    }
    os << "  ],\n";
    os << "  \"summary\": {";
    for (size_t c = 0; c < byClass.size(); ++c) {
        os << "\"" << runClassName(static_cast<RunClass>(c))
           << "\": " << byClass[c] << ", ";
    }
    os << "\"unexplainedSdc\": " << unexplainedSdc << "}\n";
    os << "}\n";
}

} // namespace plast::resilience
