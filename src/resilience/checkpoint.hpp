/**
 * @file
 * Text round-trip for fabric checkpoints, in the cfgio idiom: a small
 * line-oriented format so a snapshot can be written to disk, inspected,
 * and restored in a later process (same FabricConfig required —
 * `cfghash` is verified by Fabric::restoreCheckpoint).
 */

#ifndef PLAST_RESILIENCE_CHECKPOINT_HPP
#define PLAST_RESILIENCE_CHECKPOINT_HPP

#include <iosfwd>
#include <string>

#include "sim/fabric.hpp"

namespace plast::resilience
{

/** Serialize a checkpoint as text (always succeeds). */
void writeCheckpoint(std::ostream &os, const FabricCheckpoint &cp);

/** Parse a checkpoint written by writeCheckpoint(). Returns false and
 *  fills `err` (when non-null) on a malformed stream. */
bool readCheckpoint(std::istream &is, FabricCheckpoint &cp,
                    std::string *err = nullptr);

} // namespace plast::resilience

#endif // PLAST_RESILIENCE_CHECKPOINT_HPP
