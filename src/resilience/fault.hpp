/**
 * @file
 * Fault model library: the taxonomy of hardware upsets the simulator
 * can inject, seeded random fault plans over a fabric configuration,
 * and the injector that delivers the events into a running fabric.
 *
 * Fault kinds and where they strike:
 *
 *  - transient bit flips in PCU pipeline registers (unprotected SIMD
 *    datapath latches);
 *  - transient bit flips in PMU scratchpad words (SECDED-protected
 *    when PmuParams::ecc is set);
 *  - control-token drop / duplication in switch-box registers;
 *  - DRAM burst response errors (SECDED-protected when DramParams::ecc
 *    is set: single-bit corrected, double-bit detected and retried);
 *  - hard faults: a PCU or PMU freezes permanently (stuck unit).
 *
 * Every event is timestamped; the fabric applies due events at cycle
 * boundaries, so a plan plus a seed is a complete, reproducible fault
 * scenario. DRAM events are the exception — they are data-path
 * triggered, firing on the next read-burst response at or after their
 * nominal cycle (an idle memory bus cannot observe a response error).
 */

#ifndef PLAST_RESILIENCE_FAULT_HPP
#define PLAST_RESILIENCE_FAULT_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "arch/config.hpp"
#include "base/types.hpp"
#include "sim/memsys.hpp"

namespace plast::resilience
{

enum class FaultKind : uint8_t
{
    kPcuRegFlip,     ///< transient: pipeline-register bit flip
    kPmuScratchFlip, ///< transient: scratchpad word upset
    kCtrlTokenDrop,  ///< transient: control stream loses one token
    kCtrlTokenDup,   ///< transient: control stream replays one token
    kDramResponse,   ///< transient: read burst returns corrupted
    kPcuStuck,       ///< hard: PCU freezes permanently
    kPmuStuck,       ///< hard: PMU freezes permanently
    kCount,
};

const char *faultKindName(FaultKind k);

inline bool
isHardFault(FaultKind k)
{
    return k == FaultKind::kPcuStuck || k == FaultKind::kPmuStuck;
}

/** Kinds whose effects an ECC-protected memory hierarchy detects or
 *  corrects (the remainder strike unprotected datapath/control state). */
inline bool
isEccProtected(FaultKind k)
{
    return k == FaultKind::kPmuScratchFlip || k == FaultKind::kDramResponse;
}

struct FaultEvent
{
    FaultKind kind = FaultKind::kPcuRegFlip;
    Cycles cycle = 0;   ///< nominal injection cycle
    uint32_t unit = 0;  ///< PCU/PMU index, or control-channel ordinal
    uint32_t buf = 0;   ///< scratch flips: N-buffer index
    uint32_t addr = 0;  ///< scratch flips: word address
    uint32_t bits = 1;  ///< upset width (1 = ECC-correctable)
    uint32_t bit = 0;   ///< bit position (reg flips, DRAM corruption)
    uint32_t reg = 0;   ///< reg flips: pipeline register
    uint32_t lane = 0;  ///< reg flips: SIMD lane
    bool fired = false; ///< one-shot: a fired event never re-fires

    std::string describe() const;
};

/** Which fault kinds a random plan draws from. */
enum class FaultMix : uint8_t
{
    kAll,       ///< every transient kind (plus hard if requested)
    kProtected, ///< only ECC-covered kinds (scratch + DRAM)
    kDatapath,  ///< PCU reg flips and scratch flips only (never hangs)
};

/**
 * A seeded, sorted schedule of fault events. `random()` draws the
 * event count from `eventsPerMillionCycles * horizon`, then targets
 * each event at used units of `cfg` uniformly.
 */
struct FaultPlan
{
    std::vector<FaultEvent> events; ///< sorted by nominal cycle

    static FaultPlan random(uint64_t seed, double eventsPerMillionCycles,
                            Cycles horizon, const FabricConfig &cfg,
                            FaultMix mix = FaultMix::kAll,
                            bool includeHard = false);

    bool empty() const { return events.empty(); }
};

/**
 * Delivers a FaultPlan into a fabric. The fabric polls `collectDue()`
 * at cycle boundaries and dispatches each event to the targeted
 * component; DRAM events are delivered through the MemFaultHook
 * interface instead. Events are strictly one-shot, which is what makes
 * rollback re-execution converge: a replayed region re-runs fault-free.
 */
class FaultInjector : public MemFaultHook
{
  public:
    FaultInjector(FaultPlan plan, bool dramEcc);

    /** Earliest unfired clock-triggered event cycle after `now`
     *  (kNeverCycle when none). DRAM events are excluded — they fire
     *  on memory traffic, not on the clock. */
    Cycles nextDue(Cycles now) const;

    /** Unfired clock-triggered events with cycle <= now. The caller
     *  dispatches them and must treat them as fired (this call marks
     *  them). */
    std::vector<FaultEvent> collectDue(Cycles now);

    /** MemFaultHook: consume the next due DRAM event, if any. With
     *  DRAM ECC the upset is corrected (1 bit) or detected-and-retried
     *  (2+ bits); without ECC it corrupts the delivered data. */
    BurstFault onBurstResponse(Addr lineAddr, Cycles now) override;

    const std::vector<FaultEvent> &events() const { return events_; }

    uint32_t firedCount() const;
    uint32_t firedCount(FaultKind k) const;
    /** Fired events of unprotected kinds (potential silent corruption
     *  even with ECC on). */
    uint32_t firedUnprotected() const;
    /** Physical units frozen by fired hard-fault events. */
    std::vector<FaultEvent> firedStuck() const;
    /** Earliest fired event cycle (kNeverCycle when none fired):
     *  rollback must restart at or before this point. */
    Cycles earliestFiredCycle() const;

  private:
    std::vector<FaultEvent> events_;
    bool dramEcc_;
};

} // namespace plast::resilience

#endif // PLAST_RESILIENCE_FAULT_HPP
