/**
 * @file
 * Fault-injection campaign: sweep seeded fault plans over the
 * evaluation benchmarks, drive every run through the recovery
 * orchestrator, and tally the outcome classes. The JSON report feeds
 * CI (which fails on any *unexplained* silent corruption — an SDC
 * while only ECC-protected state was upset and ECC was on).
 */

#ifndef PLAST_RESILIENCE_CAMPAIGN_HPP
#define PLAST_RESILIENCE_CAMPAIGN_HPP

#include <array>
#include <iosfwd>
#include <string>
#include <vector>

#include "resilience/recovery.hpp"

namespace plast::resilience
{

struct CampaignOptions
{
    double rate = 50.0; ///< fault events per million cycles
    uint64_t seed = 1;
    uint32_t runsPerApp = 3;
    bool ecc = true;    ///< scratchpad + DRAM SECDED on
    bool includeHard = false;
    FaultMix mix = FaultMix::kAll;
    /** Benchmark names (apps::allApps subset); empty = all 13. */
    std::vector<std::string> apps;
    Cycles maxCycles = 0; ///< per attempt; 0 = derived per app
    ResilienceOptions resilience;
};

struct CampaignRun
{
    std::string app;
    uint64_t seed = 0;
    ResilienceReport report;
    bool unexplainedSdc = false;
};

struct CampaignResult
{
    std::vector<CampaignRun> runs;
    std::array<uint32_t, 7> byClass{}; ///< indexed by RunClass
    uint32_t unexplainedSdc = 0;

    void writeJson(std::ostream &os, const CampaignOptions &opts) const;
};

/** Run the sweep. Unknown app names are fatal. */
CampaignResult runCampaign(const CampaignOptions &opts);

} // namespace plast::resilience

#endif // PLAST_RESILIENCE_CAMPAIGN_HPP
