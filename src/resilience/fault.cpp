#include "resilience/fault.hpp"

#include <algorithm>

#include "base/logging.hpp"
#include "base/rng.hpp"

namespace plast::resilience
{

const char *
faultKindName(FaultKind k)
{
    switch (k) {
      case FaultKind::kPcuRegFlip:
        return "pcu_reg_flip";
      case FaultKind::kPmuScratchFlip:
        return "pmu_scratch_flip";
      case FaultKind::kCtrlTokenDrop:
        return "ctrl_token_drop";
      case FaultKind::kCtrlTokenDup:
        return "ctrl_token_dup";
      case FaultKind::kDramResponse:
        return "dram_response";
      case FaultKind::kPcuStuck:
        return "pcu_stuck";
      case FaultKind::kPmuStuck:
        return "pmu_stuck";
      default:
        return "?";
    }
}

std::string
FaultEvent::describe() const
{
    switch (kind) {
      case FaultKind::kPcuRegFlip:
        return strfmt("%s@%llu pcu%u reg%u lane%u bit%u", faultKindName(kind),
                      static_cast<unsigned long long>(cycle), unit, reg, lane,
                      bit);
      case FaultKind::kPmuScratchFlip:
        return strfmt("%s@%llu pmu%u buf%u addr%u bits%u", faultKindName(kind),
                      static_cast<unsigned long long>(cycle), unit, buf, addr,
                      bits);
      case FaultKind::kCtrlTokenDrop:
      case FaultKind::kCtrlTokenDup:
        return strfmt("%s@%llu chan%u", faultKindName(kind),
                      static_cast<unsigned long long>(cycle), unit);
      case FaultKind::kDramResponse:
        return strfmt("%s@%llu bits%u bit%u", faultKindName(kind),
                      static_cast<unsigned long long>(cycle), bits, bit);
      case FaultKind::kPcuStuck:
      case FaultKind::kPmuStuck:
        return strfmt("%s@%llu unit%u", faultKindName(kind),
                      static_cast<unsigned long long>(cycle), unit);
      default:
        return "?";
    }
}

namespace
{

std::vector<FaultKind>
kindsFor(FaultMix mix, bool includeHard)
{
    std::vector<FaultKind> kinds;
    switch (mix) {
      case FaultMix::kAll:
        kinds = {FaultKind::kPcuRegFlip, FaultKind::kPmuScratchFlip,
                 FaultKind::kCtrlTokenDrop, FaultKind::kCtrlTokenDup,
                 FaultKind::kDramResponse};
        break;
      case FaultMix::kProtected:
        kinds = {FaultKind::kPmuScratchFlip, FaultKind::kDramResponse};
        break;
      case FaultMix::kDatapath:
        kinds = {FaultKind::kPcuRegFlip, FaultKind::kPmuScratchFlip};
        break;
    }
    if (includeHard) {
        kinds.push_back(FaultKind::kPcuStuck);
        kinds.push_back(FaultKind::kPmuStuck);
    }
    return kinds;
}

} // namespace

FaultPlan
FaultPlan::random(uint64_t seed, double eventsPerMillionCycles, Cycles horizon,
                  const FabricConfig &cfg, FaultMix mix, bool includeHard)
{
    FaultPlan plan;
    if (horizon == 0 || eventsPerMillionCycles <= 0.0)
        return plan;

    // Target lists: only used units can be struck (an upset in an
    // unconfigured unit is architecturally masked by definition, so
    // modeling it would only dilute the campaign).
    std::vector<uint32_t> pcus, pmus;
    for (uint32_t i = 0; i < cfg.pcus.size(); ++i)
        if (cfg.pcus[i].used)
            pcus.push_back(i);
    for (uint32_t i = 0; i < cfg.pmus.size(); ++i)
        if (cfg.pmus[i].used &&
            cfg.pmus[i].scratch.mode != BankingMode::kFifo &&
            cfg.pmus[i].scratch.sizeWords > 0)
            pmus.push_back(i);
    uint32_t ctrlChans = 0;
    for (const ChannelCfg &ch : cfg.channels)
        if (ch.kind == NetKind::kControl)
            ++ctrlChans;

    Rng rng(seed ^ 0x9e3779b97f4a7c15ull);
    double expected =
        eventsPerMillionCycles * static_cast<double>(horizon) / 1e6;
    uint32_t count = static_cast<uint32_t>(expected);
    if (rng.nextFloat() < expected - static_cast<double>(count))
        ++count;

    std::vector<FaultKind> kinds = kindsFor(mix, includeHard);
    bool hardPlaced = false;
    for (uint32_t n = 0; n < count; ++n) {
        FaultEvent e;
        e.kind = kinds[rng.nextBounded(kinds.size())];
        // At most one hard fault per plan: recovery re-maps around the
        // full fired-stuck set, but a plan that freezes half the fabric
        // tells us nothing a single freeze does not.
        if (isHardFault(e.kind) && hardPlaced)
            e.kind = FaultKind::kPcuRegFlip;
        e.cycle = 1 + rng.nextBounded(horizon);
        switch (e.kind) {
          case FaultKind::kPcuRegFlip:
          case FaultKind::kPcuStuck:
            if (pcus.empty())
                continue;
            e.unit = pcus[rng.nextBounded(pcus.size())];
            e.reg = static_cast<uint32_t>(rng.nextBounded(256));
            e.lane = static_cast<uint32_t>(rng.nextBounded(256));
            e.bit = static_cast<uint32_t>(rng.nextBounded(32));
            break;
          case FaultKind::kPmuScratchFlip:
          case FaultKind::kPmuStuck:
            if (pmus.empty())
                continue;
            e.unit = pmus[rng.nextBounded(pmus.size())];
            {
                const ScratchCfg &sc = cfg.pmus[e.unit].scratch;
                e.buf = static_cast<uint32_t>(rng.nextBounded(sc.numBufs));
                e.addr = static_cast<uint32_t>(rng.nextBounded(sc.sizeWords));
            }
            e.bits = rng.nextFloat() < 0.85 ? 1 : 2;
            e.bit = static_cast<uint32_t>(rng.nextBounded(32));
            break;
          case FaultKind::kCtrlTokenDrop:
          case FaultKind::kCtrlTokenDup:
            if (ctrlChans == 0)
                continue;
            e.unit = static_cast<uint32_t>(rng.nextBounded(ctrlChans));
            break;
          case FaultKind::kDramResponse:
            e.bits = rng.nextFloat() < 0.85 ? 1 : 2;
            e.bit = static_cast<uint32_t>(
                rng.nextBounded(8 * cfg.params.dram.burstBytes));
            break;
          default:
            continue;
        }
        if (isHardFault(e.kind))
            hardPlaced = true;
        plan.events.push_back(e);
    }

    std::stable_sort(plan.events.begin(), plan.events.end(),
                     [](const FaultEvent &a, const FaultEvent &b) {
                         return a.cycle < b.cycle;
                     });
    return plan;
}

FaultInjector::FaultInjector(FaultPlan plan, bool dramEcc)
    : events_(std::move(plan.events)), dramEcc_(dramEcc)
{
}

Cycles
FaultInjector::nextDue(Cycles now) const
{
    Cycles best = kNeverCycle;
    for (const FaultEvent &e : events_) {
        if (e.fired || e.kind == FaultKind::kDramResponse)
            continue;
        if (e.cycle > now && e.cycle < best)
            best = e.cycle;
    }
    return best;
}

std::vector<FaultEvent>
FaultInjector::collectDue(Cycles now)
{
    std::vector<FaultEvent> due;
    for (FaultEvent &e : events_) {
        if (e.fired || e.kind == FaultKind::kDramResponse)
            continue;
        if (e.cycle <= now) {
            e.fired = true;
            due.push_back(e);
        }
    }
    return due;
}

MemFaultHook::BurstFault
FaultInjector::onBurstResponse(Addr lineAddr, Cycles now)
{
    (void)lineAddr;
    for (FaultEvent &e : events_) {
        if (e.fired || e.kind != FaultKind::kDramResponse || e.cycle > now)
            continue;
        e.fired = true;
        BurstFault f;
        f.bit = e.bit;
        if (!dramEcc_)
            f.action = BurstAction::kCorrupt;
        else if (e.bits <= 1)
            f.action = BurstAction::kCorrected;
        else
            f.action = BurstAction::kRetry;
        return f;
    }
    return {};
}

uint32_t
FaultInjector::firedCount() const
{
    uint32_t n = 0;
    for (const FaultEvent &e : events_)
        n += e.fired ? 1 : 0;
    return n;
}

uint32_t
FaultInjector::firedCount(FaultKind k) const
{
    uint32_t n = 0;
    for (const FaultEvent &e : events_)
        n += (e.fired && e.kind == k) ? 1 : 0;
    return n;
}

uint32_t
FaultInjector::firedUnprotected() const
{
    uint32_t n = 0;
    for (const FaultEvent &e : events_)
        n += (e.fired && !isEccProtected(e.kind) && !isHardFault(e.kind))
                 ? 1
                 : 0;
    return n;
}

std::vector<FaultEvent>
FaultInjector::firedStuck() const
{
    std::vector<FaultEvent> out;
    for (const FaultEvent &e : events_)
        if (e.fired && isHardFault(e.kind))
            out.push_back(e);
    return out;
}

Cycles
FaultInjector::earliestFiredCycle() const
{
    Cycles best = kNeverCycle;
    for (const FaultEvent &e : events_)
        if (e.fired && e.cycle < best)
            best = e.cycle;
    return best;
}

} // namespace plast::resilience
