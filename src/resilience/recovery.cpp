#include "resilience/recovery.hpp"

#include <algorithm>

#include "base/logging.hpp"

namespace plast::resilience
{

const char *
runClassName(RunClass c)
{
    switch (c) {
      case RunClass::kClean:
        return "clean";
      case RunClass::kMasked:
        return "masked";
      case RunClass::kCorrected:
        return "corrected";
      case RunClass::kRecovered:
        return "recovered";
      case RunClass::kDetectedUnrecoverable:
        return "detected-unrecoverable";
      case RunClass::kSilentCorruption:
        return "silent-corruption";
      case RunClass::kCompileError:
        return "compile-error";
    }
    return "?";
}

ResilientRunner::ResilientRunner(pir::Program prog, ArchParams params,
                                 ResilienceOptions opts)
    : prog_(std::move(prog)), params_(params), opts_(opts)
{
}

void
ResilientRunner::setInputs(std::map<pir::MemId, std::vector<Word>> bufs)
{
    inputs_ = std::move(bufs);
}

Status
ResilientRunner::runGolden()
{
    Runner runner(prog_, params_);
    runner.setHostBuffers(inputs_);
    if (cancel_)
        runner.setCancelToken(cancel_);
    Runner::Result res;
    Status st = runner.tryRun(res);
    if (!st.ok())
        return st;
    golden_.argOuts = res.argOuts;
    golden_.dram.clear();
    for (size_t m = 0; m < prog_.mems.size(); ++m) {
        if (prog_.mems[m].kind != pir::MemKind::kDram)
            continue;
        auto mid = static_cast<pir::MemId>(m);
        golden_.dram[mid] = runner.readDram(mid);
    }
    goldenCycles_ = res.cycles;
    haveGolden_ = true;
    return st;
}

SimOptions
ResilientRunner::simOptions() const
{
    // Thresholds scale with the fault-free horizon: a watchdog shorter
    // than a legitimate memory-bound stall would trip on healthy runs,
    // and a checkpoint interval near the horizon never builds a ring.
    SimOptions so;
    so.checkpointEvery = opts_.checkpointEvery
                             ? opts_.checkpointEvery
                             : std::max<Cycles>(1'000, goldenCycles_ / 5);
    so.keepCheckpoints = opts_.keepCheckpoints;
    so.watchdogCycles =
        opts_.watchdogCycles
            ? opts_.watchdogCycles
            : std::max<Cycles>(20'000, 2 * goldenCycles_);
    so.livelockCycles =
        opts_.livelockCycles
            ? opts_.livelockCycles
            : std::max<Cycles>(40'000, 4 * goldenCycles_);
    return so;
}

Cycles
ResilientRunner::attemptCap() const
{
    return opts_.maxCycles
               ? opts_.maxCycles
               : std::max<Cycles>(1'000'000, 50 * goldenCycles_);
}

bool
ResilientRunner::matchesGolden(Runner &runner,
                               const Runner::Result &res) const
{
    if (res.argOuts.size() != golden_.argOuts.size())
        return false;
    for (size_t s = 0; s < golden_.argOuts.size(); ++s) {
        if (res.argOuts[s] != golden_.argOuts[s])
            return false;
    }
    for (const auto &[mid, want] : golden_.dram) {
        if (runner.readDram(mid) != want)
            return false;
    }
    return true;
}

void
ResilientRunner::harvestCounters(ResilienceReport &rep,
                                 const Runner &runner,
                                 const FaultInjector &inj) const
{
    rep.eventsFired = inj.firedCount();
    rep.firedUnprotected = inj.firedUnprotected();
    const Fabric *fab = runner.fabric();
    if (!fab)
        return;
    for (uint32_t i = 0; i < fab->config().pmus.size(); ++i) {
        if (const PmuSim *pmu = fab->pmuPtr(i))
            rep.eccCorrected += pmu->scratch().eccStats().corrected;
    }
    rep.dramCorrected += fab->mem().stats().dramCorrected;
    rep.dramRetries += fab->mem().stats().dramRetries;
}

ResilienceReport
ResilientRunner::run(const FaultPlan &plan)
{
    ResilienceReport rep;
    rep.eventsPlanned = static_cast<uint32_t>(plan.events.size());

    if (!haveGolden_) {
        Status st = runGolden();
        if (!st.ok()) {
            rep.cls = st.code() == StatusCode::kCompileError
                          ? RunClass::kCompileError
                          : RunClass::kDetectedUnrecoverable;
            rep.finalStatus = st;
            rep.detail = "golden run failed: " + st.message();
            return rep;
        }
    }

    FaultInjector injector(plan, params_.dram.ecc);
    auto makeRunner = [&](const compiler::UnitMask &mask) {
        auto r = std::make_unique<Runner>(prog_, params_, simOptions());
        r->setUnitMask(mask);
        r->setHostBuffers(inputs_);
        r->setFaultInjector(&injector);
        if (cancel_)
            r->setCancelToken(cancel_);
        return r;
    };

    std::unique_ptr<Runner> runner = makeRunner({});
    Status st = runner->tryCompile();
    if (!st.ok()) {
        rep.cls = RunClass::kCompileError;
        rep.finalStatus = st;
        harvestOutputs(*runner, Runner::Result{});
        recordManifest(*runner, Runner::Result{}, rep);
        return rep;
    }

    const Cycles cap = attemptCap();
    Runner::Result res;
    st = runner->tryRun(res, cap);

    uint32_t attempts = 0;
    while (!st.ok()) {
        if (st.code() == StatusCode::kCancelled ||
            st.code() == StatusCode::kDeadlineExceeded) {
            // A cancel/deadline trip is the caller reclaiming the
            // worker, not a fault — recovery must not spend more time.
            rep.detail += "aborted by caller: " + st.message() + "\n";
            break;
        }
        if (++attempts > opts_.maxRecoveries) {
            rep.detail += strfmt("recovery budget (%u) exhausted\n",
                                 opts_.maxRecoveries);
            break;
        }

        const bool hang = st.code() == StatusCode::kDeadlock ||
                          st.code() == StatusCode::kWatchdog ||
                          st.code() == StatusCode::kLivelock ||
                          st.code() == StatusCode::kMaxCycles;
        auto stuck = injector.firedStuck();

        if (hang && !stuck.empty()) {
            // A frozen unit starves its consumers; no amount of replay
            // on the same placement helps. Re-place-and-route with the
            // faulted sites masked and restart with pristine inputs
            // (checkpoints are bound to the old placement).
            compiler::UnitMask mask;
            for (const auto &ev : stuck) {
                if (ev.kind == FaultKind::kPcuStuck)
                    mask.pcus.push_back(ev.unit);
                else
                    mask.pmus.push_back(ev.unit);
            }
            rep.detail +=
                strfmt("%s; re-mapping around %zu hard-faulted unit(s)\n",
                       st.message().c_str(), stuck.size());
            ++rep.remaps;
            runner = makeRunner(mask);
            st = runner->tryCompile();
            if (!st.ok()) {
                rep.detail += "degraded re-mapping infeasible: " +
                              st.message() + "\n";
                break;
            }
            st = runner->tryRun(res, cap);
            continue;
        }

        if (st.code() == StatusCode::kUncorrectable || hang) {
            Fabric *fab = runner->mutableFabric();
            // Roll back to the newest checkpoint that predates the
            // damage. For an ECC latch that is the recorded corruption
            // cycle; for a hang blamed on transient token loss it is
            // the earliest fired event.
            Cycles bad = st.code() == StatusCode::kUncorrectable
                             ? fab->eccCorruptedAt()
                             : injector.earliestFiredCycle();
            const FabricCheckpoint *pick = nullptr;
            for (const auto &cp : fab->autoCheckpoints()) {
                if (cp.cycle <= bad && (!pick || cp.cycle > pick->cycle))
                    pick = &cp;
            }
            if (pick) {
                FabricCheckpoint cp = *pick; // restore prunes the ring
                Status rst = fab->restoreCheckpoint(cp);
                if (!rst.ok()) {
                    rep.detail +=
                        "checkpoint restore failed: " + rst.message() +
                        "\n";
                    st = rst;
                    break;
                }
                rep.detail += strfmt(
                    "%s; rolled back to checkpoint at cycle %llu\n",
                    st.message().c_str(),
                    static_cast<unsigned long long>(cp.cycle));
                ++rep.rollbacks;
                RunResult rr = fab->runChecked(cap);
                st = rr.status;
                if (st.ok()) {
                    res = Runner::Result{};
                    res.cycles = rr.cycles;
                    runner->collectResult(res);
                }
                continue;
            }
            // No usable checkpoint: restart from cycle 0 (rebuilds the
            // fabric and restages the DRAM image; one-shot events make
            // the re-execution fault-free).
            rep.detail += st.message() + "; no checkpoint at or before "
                                         "the corruption point — "
                                         "restarting\n";
            ++rep.restarts;
            st = runner->tryRun(res, cap);
            continue;
        }

        // Anything else (compile regressions, internal errors) is not
        // recoverable by replay.
        rep.detail += "unrecoverable status: " + st.message() + "\n";
        break;
    }

    harvestCounters(rep, *runner, injector);
    rep.finalStatus = st;
    harvestOutputs(*runner, res);

    if (!st.ok()) {
        rep.cls = RunClass::kDetectedUnrecoverable;
        recordManifest(*runner, res, rep);
        return rep;
    }

    rep.cycles = res.cycles;
    if (!matchesGolden(*runner, res)) {
        rep.cls = RunClass::kSilentCorruption;
        rep.detail += "output diverges from the fault-free golden run\n";
    } else if (rep.rollbacks || rep.restarts || rep.remaps) {
        rep.cls = RunClass::kRecovered;
    } else if (rep.eccCorrected || rep.dramCorrected || rep.dramRetries) {
        rep.cls = RunClass::kCorrected;
    } else if (rep.eventsFired) {
        rep.cls = RunClass::kMasked;
    } else {
        rep.cls = RunClass::kClean;
    }
    recordManifest(*runner, res, rep);
    return rep;
}

void
ResilientRunner::harvestOutputs(Runner &runner, const Runner::Result &res)
{
    lastResult_ = res;
    lastDram_.clear();
    if (!runner.fabric())
        return; // compile error or never built — nothing to read back
    for (size_t m = 0; m < prog_.mems.size(); ++m) {
        if (prog_.mems[m].kind != pir::MemKind::kDram)
            continue;
        auto mid = static_cast<pir::MemId>(m);
        lastDram_[mid] = runner.readDram(mid);
    }
}

void
ResilientRunner::recordManifest(const Runner &runner,
                                const Runner::Result &res,
                                const ResilienceReport &rep)
{
    RunManifest m = runner.buildManifest(res, rep.finalStatus);
    // The classification is the outcome that matters for a resilience
    // run; the typed status survives in `detail` via buildManifest.
    m.outcome = runClassName(rep.cls);
    m.metrics["resilience.eventsPlanned"] = rep.eventsPlanned;
    m.metrics["resilience.eventsFired"] = rep.eventsFired;
    m.metrics["resilience.firedUnprotected"] = rep.firedUnprotected;
    m.metrics["resilience.rollbacks"] = rep.rollbacks;
    m.metrics["resilience.restarts"] = rep.restarts;
    m.metrics["resilience.remaps"] = rep.remaps;
    m.metrics["resilience.eccCorrected"] = rep.eccCorrected;
    m.metrics["resilience.dramCorrected"] = rep.dramCorrected;
    m.metrics["resilience.dramRetries"] = rep.dramRetries;
    lastManifest_ = std::move(m);
}

} // namespace plast::resilience
