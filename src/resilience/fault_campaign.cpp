/**
 * @file
 * Fault-injection campaign driver:
 *
 *   fault_campaign --rate 50 --apps all --runs 3 --out campaign.json
 *
 * sweeps seeded fault plans over the evaluation benchmarks, recovers
 * where the machinery allows, prints a per-class tally, and writes the
 * full JSON report. Exits nonzero iff any run ended in *unexplained*
 * silent data corruption (wrong output while only ECC-protected state
 * was upset and ECC was on) — the invariant CI enforces.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "base/logging.hpp"
#include "resilience/campaign.hpp"

using namespace plast;
using namespace plast::resilience;

namespace
{

void
usage()
{
    std::printf(
        "usage: fault_campaign [options]\n"
        "  --rate=<r>          fault events per million cycles "
        "(default 50)\n"
        "  --apps=<list>       'all' or comma-separated names "
        "(default all)\n"
        "  --runs=<n>          fault plans per app (default 3)\n"
        "  --seed=<s>          base RNG seed (default 1)\n"
        "  --ecc / --no-ecc    SECDED on scratchpads + DRAM "
        "(default on)\n"
        "  --kinds=<mix>       all | protected | datapath "
        "(default all)\n"
        "  --hard              allow a hard (stuck-unit) fault per "
        "plan\n"
        "  --max-cycles=<n>    per-attempt cycle cap (default derived)\n"
        "  --out=<path>        write the JSON report (default stdout)\n");
}

std::string
flagValue(const char *arg, const char *name)
{
    size_t n = std::strlen(name);
    if (std::strncmp(arg, name, n) == 0 && arg[n] == '=')
        return arg + n + 1;
    return "";
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    CampaignOptions opts;
    std::string out_path;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        std::string v;
        if (!(v = flagValue(arg, "--rate")).empty()) {
            opts.rate = std::stod(v);
        } else if (!(v = flagValue(arg, "--apps")).empty()) {
            if (v != "all") {
                std::stringstream ss(v);
                std::string name;
                while (std::getline(ss, name, ','))
                    opts.apps.push_back(name);
            }
        } else if (!(v = flagValue(arg, "--runs")).empty()) {
            opts.runsPerApp = std::stoul(v);
        } else if (!(v = flagValue(arg, "--seed")).empty()) {
            opts.seed = std::stoull(v);
        } else if (std::strcmp(arg, "--ecc") == 0) {
            opts.ecc = true;
        } else if (std::strcmp(arg, "--no-ecc") == 0) {
            opts.ecc = false;
        } else if (!(v = flagValue(arg, "--kinds")).empty()) {
            if (v == "all")
                opts.mix = FaultMix::kAll;
            else if (v == "protected")
                opts.mix = FaultMix::kProtected;
            else if (v == "datapath")
                opts.mix = FaultMix::kDatapath;
            else
                fatal("unknown --kinds '%s'", v.c_str());
        } else if (std::strcmp(arg, "--hard") == 0) {
            opts.includeHard = true;
        } else if (!(v = flagValue(arg, "--max-cycles")).empty()) {
            opts.maxCycles = std::stoull(v);
        } else if (!(v = flagValue(arg, "--out")).empty()) {
            out_path = v;
        } else {
            usage();
            return std::strcmp(arg, "--help") == 0 ? 0 : 1;
        }
    }

    CampaignResult result = runCampaign(opts);

    std::printf("fault campaign: rate=%.1f/Mcyc ecc=%s hard=%s "
                "apps=%s runs=%zu\n",
                opts.rate, opts.ecc ? "on" : "off",
                opts.includeHard ? "yes" : "no",
                opts.apps.empty() ? "all" : "selected",
                result.runs.size());
    for (size_t c = 0; c < result.byClass.size(); ++c) {
        if (result.byClass[c]) {
            std::printf("  %-24s %u\n",
                        runClassName(static_cast<RunClass>(c)),
                        result.byClass[c]);
        }
    }
    std::printf("  %-24s %u\n", "unexplained SDC",
                result.unexplainedSdc);

    if (out_path.empty()) {
        result.writeJson(std::cout, opts);
    } else {
        std::ofstream ofs(out_path);
        fatal_if(!ofs, "cannot open '%s' for writing",
                 out_path.c_str());
        result.writeJson(ofs, opts);
        std::printf("wrote %s\n", out_path.c_str());
    }

    return result.unexplainedSdc ? 1 : 0;
}
