#include "resilience/checkpoint.hpp"

#include <istream>
#include <ostream>

#include "base/logging.hpp"

namespace plast::resilience
{

namespace
{
constexpr const char *kMagic = "plasticine_checkpoint";
constexpr uint32_t kVersion = 1;
} // namespace

void
writeCheckpoint(std::ostream &os, const FabricCheckpoint &cp)
{
    os << kMagic << " " << kVersion << "\n";
    os << "cycle " << cp.cycle << "\n";
    os << std::hex;
    os << "cfghash " << cp.cfgHash << "\n";
    os << "tape " << std::dec << cp.tape.size() << std::hex << "\n";
    // Eight words per line keeps the file diffable without bloating it.
    for (size_t i = 0; i < cp.tape.size(); ++i)
        os << cp.tape[i] << ((i % 8 == 7) ? "\n" : " ");
    if (cp.tape.size() % 8 != 0)
        os << "\n";
    os << std::dec << "end\n";
}

bool
readCheckpoint(std::istream &is, FabricCheckpoint &cp, std::string *err)
{
    auto fail = [&](const std::string &msg) {
        if (err)
            *err = msg;
        return false;
    };

    std::string magic;
    uint32_t version = 0;
    if (!(is >> magic >> version) || magic != kMagic)
        return fail("not a checkpoint file (bad magic)");
    if (version != kVersion)
        return fail(strfmt("unsupported checkpoint version %u", version));

    std::string key;
    if (!(is >> key >> cp.cycle) || key != "cycle")
        return fail("expected 'cycle <n>'");
    if (!(is >> key >> std::hex >> cp.cfgHash) || key != "cfghash")
        return fail("expected 'cfghash <hex>'");
    size_t words = 0;
    if (!(is >> key >> std::dec >> words) || key != "tape")
        return fail("expected 'tape <count>'");

    cp.tape.resize(words);
    is >> std::hex;
    for (size_t i = 0; i < words; ++i) {
        if (!(is >> cp.tape[i]))
            return fail(strfmt("truncated tape at word %zu of %zu", i,
                               words));
    }
    is >> std::dec;
    if (!(is >> key) || key != "end")
        return fail("missing 'end' trailer");
    return true;
}

} // namespace plast::resilience
