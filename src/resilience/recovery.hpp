/**
 * @file
 * The recovery orchestrator: runs an application under a fault plan
 * and drives every resilience mechanism in concert — ECC correction
 * happens inside the fabric, while this layer reacts to *detected*
 * failures (uncorrectable ECC latches, deadlocks, watchdog/livelock
 * trips) with checkpoint rollback, full restart, or degraded
 * re-place-and-route around hard-faulted units. Each run is classified
 * against a fault-free golden execution of the same inputs:
 *
 *   clean      no fault event fired at all
 *   masked     faults fired but the output is exact with no machinery
 *              engaged (the upset hit dead state)
 *   corrected  ECC / DRAM retry absorbed the upsets in place
 *   recovered  rollback, restart or re-mapping was needed; output exact
 *   detected-unrecoverable   detected, but the recovery budget ran out
 *   silent-corruption        completed with wrong output (SDC)
 *
 * A rollback re-executes from the newest checkpoint at or before the
 * corruption cycle; fault events are one-shot, so the replayed region
 * runs fault-free and re-execution converges. Checkpoints are bound to
 * a placement, so a re-mapping onto a degraded fabric restarts from
 * cycle 0 with freshly staged inputs (documented in DESIGN.md).
 */

#ifndef PLAST_RESILIENCE_RECOVERY_HPP
#define PLAST_RESILIENCE_RECOVERY_HPP

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "resilience/fault.hpp"
#include "runtime/runner.hpp"

namespace plast::resilience
{

struct ResilienceOptions
{
    /** Hard cap per attempt; 0 derives ~50x the golden cycle count. */
    Cycles maxCycles = 0;
    /** Checkpoint interval; 0 derives ~1/5 of the golden cycle count. */
    Cycles checkpointEvery = 0;
    uint32_t keepCheckpoints = 4;
    /** Watchdog / livelock windows; 0 derives from the golden count. */
    Cycles watchdogCycles = 0;
    Cycles livelockCycles = 0;
    /** Recovery attempts (rollbacks + restarts + remaps) before giving
     *  up with detected-unrecoverable. */
    uint32_t maxRecoveries = 4;
};

enum class RunClass : uint8_t
{
    kClean,
    kMasked,
    kCorrected,
    kRecovered,
    kDetectedUnrecoverable,
    kSilentCorruption,
    kCompileError,
};

const char *runClassName(RunClass c);

struct ResilienceReport
{
    RunClass cls = RunClass::kClean;
    Status finalStatus;
    Cycles cycles = 0;       ///< completion cycle of the final attempt
    uint32_t rollbacks = 0;  ///< checkpoint restores
    uint32_t restarts = 0;   ///< cycle-0 restarts (no usable checkpoint)
    uint32_t remaps = 0;     ///< degraded re-place-and-route compiles
    uint32_t eventsPlanned = 0;
    uint32_t eventsFired = 0;
    uint32_t firedUnprotected = 0; ///< fired events ECC cannot see
    uint64_t eccCorrected = 0;     ///< scratchpad single-bit scrubs
    uint64_t dramCorrected = 0;
    uint64_t dramRetries = 0;
    std::string detail; ///< human-readable recovery trail

    /** A silent corruption is *explained* when at least one fired event
     *  struck state outside the ECC umbrella (or ECC was off — the
     *  caller knows). An unexplained SDC with ECC on means the
     *  detection machinery has a hole. */
    bool explainedSdc() const { return firedUnprotected > 0; }
};

/** Bit-exact outputs of a fault-free execution. */
struct GoldenOutputs
{
    std::vector<std::deque<Word>> argOuts;
    std::map<pir::MemId, std::vector<Word>> dram;
};

class ResilientRunner
{
  public:
    ResilientRunner(pir::Program prog, ArchParams params,
                    ResilienceOptions opts = {});

    /** Input staging (before runGolden / run). */
    void setInputs(std::map<pir::MemId, std::vector<Word>> bufs);

    /** Cooperative cancellation: the token is armed on every runner
     *  the orchestrator builds (golden, attempts, remaps). A cancel or
     *  deadline trip aborts the recovery loop immediately — it is a
     *  caller decision, not a fault to recover from — and surfaces as
     *  kDetectedUnrecoverable with the typed status in finalStatus. */
    void setCancelToken(const CancelToken *tok) { cancel_ = tok; }

    /** Fault-free reference execution: records golden outputs and the
     *  cycle horizon the recovery thresholds derive from. */
    Status runGolden();
    const GoldenOutputs &golden() const { return golden_; }
    Cycles goldenCycles() const { return goldenCycles_; }

    /** Execute under `plan`, recovering as needed, and classify. */
    ResilienceReport run(const FaultPlan &plan);

    /**
     * Manifest of the most recent run(): the standard Runner manifest
     * with the outcome replaced by the resilience classification and
     * the recovery/correction counters folded into the metric
     * snapshot under "resilience.*". Empty before the first run().
     */
    const RunManifest &lastManifest() const { return lastManifest_; }
    void writeLastManifest(std::ostream &os) const
    {
        lastManifest_.writeJson(os);
    }

    /** Outputs of the most recent run()'s final attempt — what a
     *  serving layer returns to the tenant. Valid whenever the final
     *  attempt built a fabric (empty on compile errors). */
    const Runner::Result &lastResult() const { return lastResult_; }
    const std::map<pir::MemId, std::vector<Word>> &lastDram() const
    {
        return lastDram_;
    }

  private:
    SimOptions simOptions() const;
    Cycles attemptCap() const;
    bool matchesGolden(Runner &runner, const Runner::Result &res) const;
    void harvestCounters(ResilienceReport &rep, const Runner &runner,
                         const FaultInjector &inj) const;

    pir::Program prog_;
    ArchParams params_;
    ResilienceOptions opts_;
    std::map<pir::MemId, std::vector<Word>> inputs_;
    const CancelToken *cancel_ = nullptr;
    void recordManifest(const Runner &runner, const Runner::Result &res,
                        const ResilienceReport &rep);
    void harvestOutputs(Runner &runner, const Runner::Result &res);

    GoldenOutputs golden_;
    Cycles goldenCycles_ = 0;
    bool haveGolden_ = false;
    RunManifest lastManifest_;
    Runner::Result lastResult_;
    std::map<pir::MemId, std::vector<Word>> lastDram_;
};

} // namespace plast::resilience

#endif // PLAST_RESILIENCE_RECOVERY_HPP
