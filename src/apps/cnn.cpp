/**
 * @file
 * Convolutional layer + ReLU (Table 4): per (output-feature, row)
 * iteration, a per-lane fold accumulates the 3D convolution over
 * (input channels, kernel window) with a 14-wide SIMD slice of output
 * columns; kernel weights broadcast from a PMU, input rows stream
 * lane-linearly (the sliding-window reuse the paper captures with
 * line buffers / the shift network). A second pipeline applies ReLU
 * in place, and a third performs 2x2 max pooling through on-fabric
 * gather addressing (the pooled window is strided across lanes, so the
 * PCU computes the address vectors and the PMU serves them in gather
 * mode) before both feature maps are written back.
 */

#include "apps/apps.hpp"
#include "apps/common.hpp"

namespace plast::apps
{

using namespace pir;

AppInstance
makeCnn(Scale scale)
{
    const int64_t cin = scale == Scale::kTiny ? 2 : 8;
    const int64_t f = scale == Scale::kTiny ? 2 : 16;
    const int64_t h = scale == Scale::kTiny ? 16 : 18;
    const int64_t w = h, kk = 3;
    const int64_t oh = h - kk + 1, ow = w - kk + 1; // 14 x 14

    Builder b("CNN");
    MemId vin = b.dram("in", static_cast<uint64_t>(cin * h * w));
    MemId vwt = b.dram("wt", static_cast<uint64_t>(f * cin * kk * kk));
    MemId vout = b.dram("out", static_cast<uint64_t>(f * oh * ow));
    const int64_t ph = oh / 2, pw = ow / 2;
    MemId vpool = b.dram("pool", static_cast<uint64_t>(f * ph * pw));
    const uint32_t unroll = scale == Scale::kTiny ? 1 : 4;
    const int64_t fslice = f / unroll;
    MemId sin = b.sram("inS", static_cast<uint64_t>(cin * h * w));
    MemId swt = b.sram("wtS", static_cast<uint64_t>(f * cin * kk * kk));
    std::vector<MemId> souts;
    for (uint32_t u = 0; u < unroll; ++u)
        souts.push_back(b.sram(strfmt("outS%u", u),
                               static_cast<uint64_t>(fslice * oh * ow)));

    NodeId root = b.outer("root", CtrlScheme::kSequential, {}, kNone);
    b.loadTile("loadIn", root, vin, sin, b.immI(0), cin, h * w, h * w);
    b.loadTile("loadWt", root, vwt, swt, b.immI(0), 1, f * cin * kk * kk,
               0);

    for (uint32_t u = 0; u < unroll; ++u) {
        CtrId fo = b.ctr(strfmt("fo%u", u),
                         static_cast<int64_t>(u) * fslice,
                         static_cast<int64_t>(u + 1) * fslice);
        CtrId x = b.ctr(strfmt("x%u", u), 0, oh);
        NodeId fx = b.outer(strfmt("fxLoop%u", u),
                            CtrlScheme::kMetapipe, {fo, x}, root, 2);

        CtrId c = b.ctr(strfmt("c%u", u), 0, cin);
        CtrId kx = b.ctr(strfmt("kx%u", u), 0, kk);
        CtrId ky = b.ctr(strfmt("ky%u", u), 0, kk);
        CtrId y = b.ctr(strfmt("y%u", u), 0, ow, 1, true);
        // in[c][(x+kx)][y+ky] — lane-linear in y
        ExprId in_addr = b.ima(
            b.iadd(b.ctrE(x), b.ctrE(kx)),
            b.immI(static_cast<int32_t>(w)),
            b.ima(b.ctrE(c), b.immI(static_cast<int32_t>(h * w)),
                  b.iadd(b.ctrE(y), b.ctrE(ky))));
        ExprId iv = b.load(sin, in_addr);
        // wt[fo][c][kx][ky] — broadcast
        ExprId wt_addr = b.ima(
            b.ctrE(fo), b.immI(static_cast<int32_t>(cin * kk * kk)),
            b.ima(b.ctrE(c), b.immI(static_cast<int32_t>(kk * kk)),
                  b.ima(b.ctrE(kx), b.immI(static_cast<int32_t>(kk)),
                        b.ctrE(ky))));
        ExprId wv = b.load(swt, wt_addr);
        ExprId out_addr = b.ima(
            b.isub(b.ctrE(fo),
                   b.immI(static_cast<int32_t>(u) *
                          static_cast<int32_t>(fslice))),
            b.immI(static_cast<int32_t>(oh * ow)),
            b.ima(b.ctrE(x), b.immI(static_cast<int32_t>(ow)),
                  b.ctrE(y)));
        b.compute(strfmt("conv%u", u), fx, {c, kx, ky, y}, {}, {},
                  {Builder::foldToSram(FuOp::kFAdd, b.fmul(iv, wv), c,
                                       souts[u], out_addr,
                                       /*accumulate=*/false,
                                       /*crossLane=*/false)});

        // ReLU in place over this slice's finished maps.
        CtrId o = b.ctr(strfmt("o%u", u), 0, fslice * oh * ow, 1, true);
        ExprId oaddr = b.ctrE(o);
        ExprId relu = b.alu(FuOp::kFMax, b.load(souts[u], oaddr),
                            b.immF(0.0f));
        b.compute(strfmt("relu%u", u), root, {o}, {}, {},
                  {Builder::storeSram(souts[u], oaddr, relu)});

        b.storeTile(strfmt("storeOut%u", u), root, vout, souts[u],
                    b.immI(static_cast<int32_t>(u) *
                           static_cast<int32_t>(fslice * oh * ow)),
                    fslice, oh * ow, oh * ow);

        // 2x2 max pooling: the window elements are lane-strided, so
        // the addresses are computed on the PCU and gathered from the
        // scratchpad.
        MemId spool = b.sram(strfmt("poolS%u", u),
                             static_cast<uint64_t>(fslice * ph * pw));
        CtrId f2 = b.ctr(strfmt("f2_%u", u), 0, fslice);
        CtrId px = b.ctr(strfmt("px%u", u), 0, ph);
        CtrId py = b.ctr(strfmt("py%u", u), 0, pw, 1, true);
        ExprId base = b.ima(
            b.ctrE(f2), b.immI(static_cast<int32_t>(oh * ow)),
            b.ima(b.ctrE(px), b.immI(static_cast<int32_t>(2 * ow)),
                  b.imul(b.ctrE(py), b.immI(2))));
        ExprId v00 = b.load(souts[u], base);
        ExprId v01 = b.load(souts[u], b.iadd(base, b.immI(1)));
        ExprId v10 = b.load(
            souts[u], b.iadd(base, b.immI(static_cast<int32_t>(ow))));
        ExprId v11 = b.load(
            souts[u],
            b.iadd(base, b.immI(static_cast<int32_t>(ow + 1))));
        ExprId mx = b.alu(FuOp::kFMax, b.alu(FuOp::kFMax, v00, v01),
                          b.alu(FuOp::kFMax, v10, v11));
        ExprId paddr = b.ima(
            b.ctrE(f2), b.immI(static_cast<int32_t>(ph * pw)),
            b.ima(b.ctrE(px), b.immI(static_cast<int32_t>(pw)),
                  b.ctrE(py)));
        b.compute(strfmt("pool%u", u), root, {f2, px, py}, {}, {},
                  {Builder::storeSram(spool, paddr, mx)});
        b.storeTile(strfmt("storePool%u", u), root, vpool, spool,
                    b.immI(static_cast<int32_t>(u) *
                           static_cast<int32_t>(fslice * ph * pw)),
                    fslice, ph * pw, ph * pw);
    }

    AppInstance app;
    app.name = "CNN";
    app.prog = b.finish(root);
    app.load = [=](Runner &rn) {
        fillFloats(rn.dram(vin), 0xb1, -1.0f, 1.0f);
        fillFloats(rn.dram(vwt), 0xb2, -0.5f, 0.5f);
    };
    app.flops = 2.0 * static_cast<double>(f) * oh * ow * cin * kk * kk +
                4.0 * static_cast<double>(f) * ph * pw;
    app.dramBytes = 4.0 * (static_cast<double>(cin) * h * w +
                           f * cin * kk * kk + f * oh * ow);
    app.paperScale = 884736.0 * 57600 / 1e6 / app.flops * 1e3;
    return app;
}

} // namespace plast::apps
