/**
 * @file
 * Sparse matrix - dense vector multiply (Table 4). The matrix is
 * stored in ELLPACK form (fixed nnz per row, the standard accelerator
 * layout; see DESIGN.md substitutions): per row tile, the column-index
 * and value tiles load densely while the x operands arrive through the
 * gather path — the coalescing units merge same-line requests, which
 * is exactly the random-access DRAM behaviour the paper evaluates.
 */

#include "apps/apps.hpp"
#include "apps/common.hpp"

namespace plast::apps
{

using namespace pir;

AppInstance
makeSmdv(Scale scale)
{
    const int64_t n = scale == Scale::kTiny ? 128 : 512; ///< rows
    const int64_t e = 16; ///< nnz per row (paper E[nnz] = 60)
    const int64_t rt = 64;

    Builder b("SMDV");
    MemId vcol = b.dram("col", static_cast<uint64_t>(n * e));
    MemId vval = b.dram("val", static_cast<uint64_t>(n * e));
    MemId vx = b.dram("x", static_cast<uint64_t>(n));
    MemId vy = b.dram("y", static_cast<uint64_t>(n));
    MemId scol = b.sram("colT", static_cast<uint64_t>(rt * e));
    MemId sval = b.sram("valT", static_cast<uint64_t>(rt * e));
    MemId sxg = b.sram("xg", static_cast<uint64_t>(rt * e));
    MemId sy = b.sram("yT", static_cast<uint64_t>(rt));

    NodeId root = b.outer("root", CtrlScheme::kSequential, {}, kNone);
    CtrId t = b.ctr("t", 0, n / rt);
    NodeId tiles = b.outer("tiles", CtrlScheme::kMetapipe, {t}, root);

    ExprId tile_base =
        b.imul(b.ctrE(t), b.immI(static_cast<int32_t>(rt * e)));
    b.loadTile("loadCol", tiles, vcol, scol, tile_base, 1, rt * e, 0);
    b.loadTile("loadVal", tiles, vval, sval, tile_base, 1, rt * e, 0);
    b.gather("gatherX", tiles, vx, scol, sxg, rt * e);

    CtrId r = b.ctr("r", 0, rt);
    CtrId j = b.ctr("j", 0, e, 1, true);
    ExprId idx =
        b.iadd(b.imul(b.ctrE(r), b.immI(static_cast<int32_t>(e))),
               b.ctrE(j));
    ExprId prod = b.fmul(b.load(sval, idx), b.load(sxg, idx));
    b.compute("rowDot", tiles, {r, j}, {}, {},
              {Builder::foldToSram(FuOp::kFAdd, prod, j, sy, b.ctrE(r))});

    b.storeTile("storeY", tiles, vy, sy,
                b.imul(b.ctrE(t), b.immI(static_cast<int32_t>(rt))), 1,
                rt, 0);

    AppInstance app;
    app.name = "SMDV";
    app.prog = b.finish(root);
    app.load = [=](Runner &rn) {
        fillInts(rn.dram(vcol), 0xc1, static_cast<int32_t>(n));
        fillFloats(rn.dram(vval), 0xc2, -1.0f, 1.0f);
        fillFloats(rn.dram(vx), 0xc3, -1.0f, 1.0f);
    };
    app.flops = 2.0 * static_cast<double>(n) * e;
    app.dramBytes = 4.0 * (3.0 * n * e + n);
    app.sparse = true;
    app.paperScale = (2.0 * 3840 * 60) / app.flops;
    return app;
}

} // namespace plast::apps
