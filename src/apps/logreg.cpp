/**
 * @file
 * Logistic regression by batch gradient descent (Table 4): per epoch,
 * a metapipelined tile loop computes per-point scores (cross-lane dot
 * folds), logistic deltas, and rank-1 gradient accumulation; the
 * weight vector is then updated in place (a persistent, never-cleared
 * accumulator fed by two writers: the initial load and the update).
 */

#include "apps/apps.hpp"
#include "apps/common.hpp"

namespace plast::apps
{

using namespace pir;

AppInstance
makeLogReg(Scale scale)
{
    const int64_t d = 64;
    const int64_t pts = scale == Scale::kTiny ? 128 : 512;
    const int64_t rt = 64;
    const int64_t epochs = scale == Scale::kTiny ? 2 : 3;
    const float lr = 0.1f;

    Builder b("LogReg");
    MemId vx = b.dram("x", static_cast<uint64_t>(pts * d));
    MemId vy = b.dram("y", static_cast<uint64_t>(pts));
    MemId vw0 = b.dram("w0", static_cast<uint64_t>(d));
    MemId vw = b.dram("w", static_cast<uint64_t>(d));
    MemId sw = b.sram("wS", static_cast<uint64_t>(d));
    MemId sx = b.sram("xT", static_cast<uint64_t>(rt * d));
    MemId sy = b.sram("yT", static_cast<uint64_t>(rt));
    MemId sdot = b.sram("dotT", static_cast<uint64_t>(rt));
    MemId sdel = b.sram("delT", static_cast<uint64_t>(rt));
    MemId sg = b.sram("gradS", static_cast<uint64_t>(d));

    NodeId root = b.outer("root", CtrlScheme::kSequential, {}, kNone);
    b.loadTile("loadW", root, vw0, sw, b.immI(0), 1, d, 0);
    CtrId e = b.ctr("e", 0, epochs);
    NodeId ep = b.outer("epoch", CtrlScheme::kSequential, {e}, root);
    b.clearAccumAt(sg, ep);
    b.clearAccumAt(sw, kNeverClear);

    CtrId t = b.ctr("t", 0, pts / rt);
    NodeId tiles = b.outer("tiles", CtrlScheme::kMetapipe, {t}, ep);
    b.loadTile("loadX", tiles, vx, sx,
               b.imul(b.ctrE(t), b.immI(static_cast<int32_t>(rt * d))),
               rt, d, d);
    b.loadTile("loadY", tiles, vy, sy,
               b.imul(b.ctrE(t), b.immI(static_cast<int32_t>(rt))), 1,
               rt, 0);

    // dot[r] = w . x[r]
    CtrId r = b.ctr("r", 0, rt);
    CtrId dB = b.ctr("dB", 0, d / 16);
    CtrId dd = b.ctr("dd", 0, 16, 1, true);
    ExprId di = b.iadd(b.imul(b.ctrE(dB), b.immI(16)), b.ctrE(dd));
    ExprId wv = b.load(sw, di);
    ExprId xv = b.load(
        sx, b.iadd(b.imul(b.ctrE(r), b.immI(static_cast<int32_t>(d))),
                   di));
    b.compute("dot", tiles, {r, dB, dd}, {}, {},
              {Builder::foldToSram(FuOp::kFAdd, b.fmul(wv, xv), dB, sdot,
                                   b.ctrE(r))});

    // delta[r] = sigmoid(dot[r]) - y[r]
    CtrId rB = b.ctr("rB", 0, rt / 16);
    CtrId rr = b.ctr("rr", 0, 16, 1, true);
    ExprId ri = b.iadd(b.imul(b.ctrE(rB), b.immI(16)), b.ctrE(rr));
    ExprId dv = b.load(sdot, ri);
    ExprId sig = b.fdiv(
        b.immF(1.0f),
        b.fadd(b.immF(1.0f),
               b.alu(FuOp::kFExp, b.alu(FuOp::kFNeg, dv))));
    ExprId delta = b.fsub(sig, b.load(sy, ri));
    b.compute("delta", tiles, {rB, rr}, {}, {},
              {Builder::storeSram(sdel, ri, delta)});

    // grad[j] += delta[r] * x[r][j]
    CtrId r2 = b.ctr("r2", 0, rt);
    CtrId dB2 = b.ctr("dB2", 0, d / 16);
    CtrId dd2 = b.ctr("dd2", 0, 16, 1, true);
    ExprId dj = b.iadd(b.imul(b.ctrE(dB2), b.immI(16)), b.ctrE(dd2));
    ExprId del_r = b.load(sdel, b.ctrE(r2)); // broadcast
    ExprId x_rj = b.load(
        sx, b.iadd(b.imul(b.ctrE(r2), b.immI(static_cast<int32_t>(d))),
                   dj));
    b.compute("grad", tiles, {r2, dB2, dd2}, {}, {},
              {Builder::storeSram(sg, dj, b.fmul(del_r, x_rj),
                                  /*accumulate=*/true)});

    // w[j] -= lr * grad[j] (in-place persistent accumulator)
    CtrId dB3 = b.ctr("dB3", 0, d / 16);
    CtrId dd3 = b.ctr("dd3", 0, 16, 1, true);
    ExprId dj3 = b.iadd(b.imul(b.ctrE(dB3), b.immI(16)), b.ctrE(dd3));
    ExprId upd = b.fmul(b.immF(-lr), b.load(sg, dj3));
    b.compute("update", ep, {dB3, dd3}, {}, {},
              {Builder::storeSram(sw, dj3, upd, /*accumulate=*/true)});

    b.storeTile("storeW", root, vw, sw, b.immI(0), 1, d, 0);

    AppInstance app;
    app.name = "LogReg";
    app.prog = b.finish(root);
    app.load = [=](Runner &rn) {
        fillFloats(rn.dram(vx), 0x81, -1.0f, 1.0f);
        fillFloats(rn.dram(vy), 0x82, 0.0f, 1.0f);
        for (auto &w : rn.dram(vy))
            w = floatToWord(wordToFloat(w) > 0.5f ? 1.0f : 0.0f);
        fillFloats(rn.dram(vw0), 0x83, -0.1f, 0.1f);
    };
    app.flops = static_cast<double>(epochs) * pts * (4.0 * d + 10);
    app.dramBytes =
        4.0 * (static_cast<double>(epochs) * pts * (d + 1) + 2 * d);
    app.paperScale = (5.0 * 1536 * (4.0 * 384 + 10)) / app.flops;
    app.serialSteps = static_cast<double>(epochs) * (pts / rt) * 3;
    return app;
}

} // namespace plast::apps
