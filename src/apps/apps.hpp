/**
 * @file
 * The 13 evaluation benchmarks (Table 4): each app builds a PIR
 * program at a configurable scale, stages synthetic input data, and
 * carries the analytical characteristics (FLOPs, DRAM traffic,
 * boundedness) that the FPGA baseline model consumes.
 *
 * Paper sizes (e.g. 768M-element inner product) target the full 49 W
 * chip; the default scales here run locally in seconds while keeping
 * every benchmark in the same performance regime (memory-bound
 * streaming stays memory-bound, compute-bound tiling stays
 * compute-bound). EXPERIMENTS.md documents the scaling.
 */

#ifndef PLAST_APPS_APPS_HPP
#define PLAST_APPS_APPS_HPP

#include <functional>
#include <string>
#include <vector>

#include "pir/ir.hpp"
#include "runtime/runner.hpp"

namespace plast::apps
{

struct AppInstance
{
    std::string name;
    pir::Program prog;
    /** Stage synthetic inputs into the runner's DRAM buffers. */
    std::function<void(Runner &)> load;
    /** Analytical characteristics for the baseline models. */
    double flops = 0;      ///< arithmetic operations in the kernel
    double dramBytes = 0;  ///< total DRAM traffic (bytes)
    bool sparse = false;   ///< dominated by random DRAM accesses
    double paperScale = 1; ///< paper size / this size (for projection)
    /** Length of the genuinely serial dependence chain (controller
     *  steps that cannot overlap); bounds the FPGA baseline's latency
     *  at its slower fabric clock. */
    double serialSteps = 0;
    /** DRAM-traffic multiplier on the FPGA: BRAM port/capacity limits
     *  force smaller tiles than Plasticine's 256 KB scratchpads, so
     *  tiled workloads refetch operands (§4.5: OuterProduct, GEMM). */
    double fpgaTrafficFactor = 1.0;
};

/** Scale selector: small sizes for tests, default for benches,
 *  kPaper for the paper's original dataset sizes (Table 7) on apps
 *  that support it (others fall back to their default size). */
enum class Scale { kTiny, kDefault, kPaper };

AppInstance makeInnerProduct(Scale scale, uint32_t par = 2);
AppInstance makeOuterProduct(Scale scale);
AppInstance makeBlackScholes(Scale scale, uint32_t par = 2);
AppInstance makeTpchQ6(Scale scale, uint32_t par = 2);
AppInstance makeGemm(Scale scale);
AppInstance makeGda(Scale scale);
AppInstance makeLogReg(Scale scale);
AppInstance makeSgd(Scale scale);
AppInstance makeKmeans(Scale scale);
AppInstance makeCnn(Scale scale);
AppInstance makeSmdv(Scale scale);
AppInstance makePageRank(Scale scale);
AppInstance makeBfs(Scale scale);

struct AppSpec
{
    std::string name;
    bool sparse;
    std::function<AppInstance(Scale)> make;
};

/** All benchmarks in Table 4 / Table 7 order. */
const std::vector<AppSpec> &allApps();

} // namespace plast::apps

#endif // PLAST_APPS_APPS_HPP
