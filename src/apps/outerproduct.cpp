/**
 * @file
 * Outer product (Table 4): C[i][j] = a[i] * b[j]. Bandwidth bound with
 * temporal locality in the input tiles: both vectors are tiled into
 * scratchpads under a metapipelined tile loop and the N^2 output is
 * streamed straight back to DRAM.
 */

#include "apps/apps.hpp"
#include "apps/common.hpp"

namespace plast::apps
{

using namespace pir;

AppInstance
makeOuterProduct(Scale scale)
{
    const uint64_t n = scale == Scale::kTiny ? 256 : 1024;
    const uint64_t ti = 64, tj = 64;
    const double paper_n = 76800;

    Builder b("OuterProduct");
    MemId va = b.dram("a", n);
    MemId vb = b.dram("b", n);
    MemId vc = b.dram("c", n * n);
    MemId sa = b.sram("aTile", ti);
    MemId sb = b.sram("bTile", tj);

    NodeId root = b.outer("root", CtrlScheme::kSequential, {}, kNone);
    CtrId iT = b.ctr("iT", 0, static_cast<int64_t>(n / ti));
    CtrId jT = b.ctr("jT", 0, static_cast<int64_t>(n / tj));
    NodeId tiles =
        b.outer("tiles", CtrlScheme::kMetapipe, {iT, jT}, root);

    b.loadTile("loadA", tiles, va, sa,
               b.imul(b.ctrE(iT), b.immI(static_cast<int32_t>(ti))), 1,
               static_cast<int64_t>(ti), 0);
    b.loadTile("loadB", tiles, vb, sb,
               b.imul(b.ctrE(jT), b.immI(static_cast<int32_t>(tj))), 1,
               static_cast<int64_t>(tj), 0);

    CtrId ii = b.ctr("ii", 0, static_cast<int64_t>(ti));
    CtrId jj = b.ctr("jj", 0, static_cast<int64_t>(tj), 1, true);
    ExprId av = b.load(sa, b.ctrE(ii));          // broadcast
    ExprId bv = b.load(sb, b.ctrE(jj));          // vec-linear
    ExprId prod = b.fmul(av, bv);
    // c[(iT*ti + ii) * n + jT*tj + jj]
    ExprId row = b.iadd(b.imul(b.ctrE(iT), b.immI(static_cast<int32_t>(ti))),
                        b.ctrE(ii));
    ExprId col = b.iadd(b.imul(b.ctrE(jT), b.immI(static_cast<int32_t>(tj))),
                        b.ctrE(jj));
    ExprId addr =
        b.iadd(b.imul(row, b.immI(static_cast<int32_t>(n))), col);
    b.compute("op", tiles, {ii, jj}, {}, {},
              {Builder::streamOut(vc, addr, prod)});

    AppInstance app;
    app.name = "OuterProduct";
    app.prog = b.finish(root);
    app.load = [va, vb](Runner &r) {
        fillFloats(r.dram(va), 0x31);
        fillFloats(r.dram(vb), 0x32);
    };
    app.flops = static_cast<double>(n) * static_cast<double>(n);
    app.dramBytes = 4.0 * (2.0 * n + static_cast<double>(n) * n);
    app.paperScale =
        (paper_n * paper_n) / (static_cast<double>(n) * n);
    // The FPGA cannot hold comparably large double-buffered vector
    // tiles (Table 7: 71% BRAM) and re-reads the inputs per tile pair.
    app.fpgaTrafficFactor = 4.0;
    return app;
}

} // namespace plast::apps
