/**
 * @file
 * K-means clustering (Table 4): per iteration, point tiles stream
 * through a distance pipeline (cross-lane folds), an argmin selection,
 * and a dense HashReduce — data-dependent scatter-accumulate of point
 * coordinates and counts into per-cluster accumulators — followed by a
 * centroid update with a guarded divide.
 */

#include "apps/apps.hpp"
#include "apps/common.hpp"

namespace plast::apps
{

using namespace pir;

AppInstance
makeKmeans(Scale scale)
{
    const int64_t k = 8, d = 16;
    const int64_t pts = scale == Scale::kTiny ? 128 : 512;
    const int64_t rt = 64;
    const int64_t iters = 2;

    Builder b("Kmeans");
    MemId vx = b.dram("x", static_cast<uint64_t>(pts * d));
    MemId vc0 = b.dram("c0", static_cast<uint64_t>(k * d));
    MemId vc = b.dram("c", static_cast<uint64_t>(k * d));
    MemId sc = b.sram("cS", static_cast<uint64_t>(k * d));
    MemId sx = b.sram("xT", static_cast<uint64_t>(rt * d));
    MemId sdist = b.sram("distT", static_cast<uint64_t>(rt * k));
    MemId smin = b.sram("minT", static_cast<uint64_t>(rt));
    MemId sasn = b.sram("asnT", static_cast<uint64_t>(rt));
    MemId ssum = b.sram("sumS", static_cast<uint64_t>(k * d));
    MemId scnt = b.sram("cntS", static_cast<uint64_t>(k));

    NodeId root = b.outer("root", CtrlScheme::kSequential, {}, kNone);
    b.loadTile("loadC", root, vc0, sc, b.immI(0), 1, k * d, 0);
    CtrId it = b.ctr("it", 0, iters);
    NodeId iter = b.outer("iter", CtrlScheme::kSequential, {it}, root);
    b.clearAccumAt(ssum, iter);
    b.clearAccumAt(scnt, iter);

    CtrId t = b.ctr("t", 0, pts / rt);
    NodeId tiles = b.outer("tiles", CtrlScheme::kMetapipe, {t}, iter);
    b.loadTile("loadX", tiles, vx, sx,
               b.imul(b.ctrE(t), b.immI(static_cast<int32_t>(rt * d))),
               rt, d, d);

    // dist[r][kk] = |x[r] - c[kk]|^2  (cross-lane fold over d)
    CtrId r = b.ctr("r", 0, rt);
    CtrId kk = b.ctr("kk", 0, k);
    CtrId dv = b.ctr("dv", 0, d, 1, true);
    ExprId xd = b.load(
        sx, b.iadd(b.imul(b.ctrE(r), b.immI(static_cast<int32_t>(d))),
                   b.ctrE(dv)));
    ExprId cd = b.load(
        sc, b.iadd(b.imul(b.ctrE(kk), b.immI(static_cast<int32_t>(d))),
                   b.ctrE(dv)));
    ExprId diff = b.fsub(xd, cd);
    ExprId dist_addr =
        b.iadd(b.imul(b.ctrE(r), b.immI(static_cast<int32_t>(k))),
               b.ctrE(kk));
    b.compute("dist", tiles, {r, kk, dv}, {}, {},
              {Builder::foldToSram(FuOp::kFAdd, b.fmul(diff, diff), dv,
                                   sdist, dist_addr)});

    // min over clusters
    CtrId r3 = b.ctr("r3", 0, rt);
    CtrId kv = b.ctr("kv", 0, k, 1, true);
    ExprId dval = b.load(
        sdist,
        b.iadd(b.imul(b.ctrE(r3), b.immI(static_cast<int32_t>(k))),
               b.ctrE(kv)));
    b.compute("minD", tiles, {r3, kv}, {}, {},
              {Builder::foldToSram(FuOp::kFMin, dval, kv, smin,
                                   b.ctrE(r3))});

    // argmin: largest cluster index whose distance equals the minimum
    CtrId r4 = b.ctr("r4", 0, rt);
    CtrId kv2 = b.ctr("kv2", 0, k, 1, true);
    ExprId dval2 = b.load(
        sdist,
        b.iadd(b.imul(b.ctrE(r4), b.immI(static_cast<int32_t>(k))),
               b.ctrE(kv2)));
    ExprId mval = b.load(smin, b.ctrE(r4)); // broadcast
    ExprId cand = b.alu(FuOp::kMux, b.alu(FuOp::kFEq, dval2, mval),
                        b.ctrE(kv2), b.immI(-1));
    b.compute("argmin", tiles, {r4, kv2}, {}, {},
              {Builder::foldToSram(FuOp::kIMax, cand, kv2, sasn,
                                   b.ctrE(r4))});

    // HashReduce: sum[assign[r]] += x[r]; cnt[assign[r]] += 1
    CtrId r5 = b.ctr("r5", 0, rt);
    CtrId dB = b.ctr("dB", 0, d / 16);
    CtrId dd = b.ctr("dd", 0, 16, 1, true);
    ExprId dj = b.iadd(b.imul(b.ctrE(dB), b.immI(16)), b.ctrE(dd));
    ExprId asn = b.load(sasn, b.ctrE(r5)); // broadcast
    ExprId sum_addr =
        b.iadd(b.imul(asn, b.immI(static_cast<int32_t>(d))), dj);
    ExprId xval = b.load(
        sx, b.iadd(b.imul(b.ctrE(r5), b.immI(static_cast<int32_t>(d))),
                   dj));
    b.compute("accum", tiles, {r5, dB, dd}, {}, {},
              {Builder::storeSram(ssum, sum_addr, xval, true)});

    CtrId rB = b.ctr("rB", 0, rt / 16);
    CtrId rr = b.ctr("rr", 0, 16, 1, true);
    ExprId asn_r = b.load(
        sasn, b.iadd(b.imul(b.ctrE(rB), b.immI(16)), b.ctrE(rr)));
    b.compute("count", tiles, {rB, rr}, {}, {},
              {Builder::storeSram(scnt, asn_r, b.immF(1.0f), true)});

    // new centroids: c[kk] = cnt[kk] ? sum[kk]/cnt[kk] : 0
    CtrId k2 = b.ctr("k2", 0, k);
    CtrId d2 = b.ctr("d2", 0, d, 1, true);
    ExprId caddr =
        b.iadd(b.imul(b.ctrE(k2), b.immI(static_cast<int32_t>(d))),
               b.ctrE(d2));
    ExprId cnt = b.load(scnt, b.ctrE(k2)); // broadcast
    ExprId sum = b.load(ssum, caddr);
    ExprId newc = b.alu(FuOp::kMux, b.alu(FuOp::kFGt, cnt, b.immF(0.0f)),
                        b.fdiv(sum, cnt), b.immF(0.0f));
    b.compute("newC", iter, {k2, d2}, {}, {},
              {Builder::storeSram(sc, caddr, newc)});

    b.storeTile("storeC", root, vc, sc, b.immI(0), 1, k * d, 0);

    AppInstance app;
    app.name = "Kmeans";
    app.prog = b.finish(root);
    app.load = [=](Runner &rn) {
        fillFloats(rn.dram(vx), 0xa1, -1.0f, 1.0f);
        fillFloats(rn.dram(vc0), 0xa2, -1.0f, 1.0f);
    };
    app.flops = static_cast<double>(iters) * pts * (3.0 * k * d + 2 * k);
    app.dramBytes = 4.0 * (static_cast<double>(iters) * pts * d + 2 * k * d);
    app.paperScale = (50.0 * 1536 * (3.0 * 20 * 96)) / app.flops;
    app.serialSteps = static_cast<double>(iters) * 4;
    return app;
}

} // namespace plast::apps
