/**
 * @file
 * Shared helpers for benchmark construction: deterministic data
 * generators and common PIR idioms (parallel partial-fold combiners).
 */

#ifndef PLAST_APPS_COMMON_HPP
#define PLAST_APPS_COMMON_HPP

#include <vector>

#include "base/rng.hpp"
#include "base/types.hpp"
#include "pir/builder.hpp"

namespace plast::apps
{

/** Fill with uniform floats in [lo, hi). */
inline void
fillFloats(std::vector<Word> &buf, uint64_t seed, float lo = 0.0f,
           float hi = 1.0f)
{
    Rng rng(seed);
    for (auto &w : buf)
        w = floatToWord(rng.nextFloat(lo, hi));
}

/** Fill with uniform ints in [0, bound). */
inline void
fillInts(std::vector<Word> &buf, uint64_t seed, int32_t bound)
{
    Rng rng(seed);
    for (auto &w : buf)
        w = intToWord(static_cast<int32_t>(rng.nextBounded(
            static_cast<uint64_t>(bound))));
}

/**
 * Combiner leaf: sums `parts.size()` cross-leaf scalar streams into one
 * value and emits it to `argOut`. Uses a single-lane wavefront (a
 * vectorized one-trip counter) so the reduction tree sees exactly one
 * valid lane.
 */
inline pir::NodeId
combineScalars(pir::Builder &b, pir::NodeId parent,
               const std::vector<pir::ScalarIn> &parts, FuOp op,
               int32_t argOut, const std::string &name = "combine")
{
    using namespace pir;
    CtrId one = b.ctr(name + ".one", 0, 1, 1, /*vectorized=*/true);
    ExprId sum = b.scalarRef(0);
    for (size_t i = 1; i < parts.size(); ++i)
        sum = b.alu(op, sum, b.scalarRef(static_cast<int32_t>(i)));
    Sink s = Builder::fold(op, sum, one, argOut);
    return b.compute(name, parent, {one}, {}, parts, {s});
}

} // namespace plast::apps

#endif // PLAST_APPS_COMMON_HPP
