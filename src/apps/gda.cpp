/**
 * @file
 * Gaussian Discriminant Analysis (Table 4): the covariance update
 * sigma += (x - mu)^T (x - mu) over a point set — compute bound with
 * ample locality. Points are tiled; the rank-1 outer-product update
 * accumulates into an on-chip sigma tile that is written back once.
 */

#include "apps/apps.hpp"
#include "apps/common.hpp"

namespace plast::apps
{

using namespace pir;

AppInstance
makeGda(Scale scale)
{
    const int64_t d = 32;                              // dimensions
    const int64_t pts = scale == Scale::kTiny ? 128 : 1024;
    const int64_t rt = 64;                             // points per tile

    Builder b("GDA");
    MemId vx = b.dram("x", static_cast<uint64_t>(pts * d));
    MemId vmu = b.dram("mu", static_cast<uint64_t>(d));
    MemId vsig = b.dram("sigma", static_cast<uint64_t>(d * d));
    const uint32_t unroll = scale == Scale::kTiny ? 2 : 8;
    const int64_t slice = d / unroll; ///< sigma rows per parallel PCU
    MemId sx = b.sram("xTile", static_cast<uint64_t>(rt * d));
    MemId smu = b.sram("muS", static_cast<uint64_t>(d));
    std::vector<MemId> ssigs;
    for (uint32_t u = 0; u < unroll; ++u)
        ssigs.push_back(b.sram(strfmt("sigS%u", u),
                               static_cast<uint64_t>(slice * d)));

    NodeId root = b.outer("root", CtrlScheme::kSequential, {}, kNone);
    for (MemId m : ssigs)
        b.clearAccumAt(m, root); // sigma accumulates across all tiles
    b.loadTile("loadMu", root, vmu, smu, b.immI(0), 1, d, 0);

    CtrId t = b.ctr("t", 0, pts / rt);
    NodeId tiles = b.outer("tiles", CtrlScheme::kMetapipe, {t}, root);
    b.loadTile("loadX", tiles, vx, sx,
               b.imul(b.ctrE(t), b.immI(static_cast<int32_t>(rt * d))),
               rt, d, d);

    for (uint32_t u = 0; u < unroll; ++u) {
        CtrId r = b.ctr(strfmt("r%u", u), 0, rt);
        CtrId i = b.ctr(strfmt("i%u", u),
                        static_cast<int64_t>(u) * slice,
                        static_cast<int64_t>(u + 1) * slice);
        CtrId jB = b.ctr(strfmt("jB%u", u), 0, d / 16);
        CtrId j = b.ctr(strfmt("j%u", u), 0, 16, 1, true);
        ExprId xr_i = b.load(
            sx, b.ima(b.ctrE(r), b.immI(static_cast<int32_t>(d)),
                      b.ctrE(i)));                  // broadcast
        ExprId mu_i = b.load(smu, b.ctrE(i));       // broadcast
        ExprId col = b.ima(b.ctrE(jB), b.immI(16), b.ctrE(j));
        ExprId xr_j = b.load(
            sx, b.ima(b.ctrE(r), b.immI(static_cast<int32_t>(d)),
                      col));                        // vec-linear
        ExprId mu_j = b.load(smu, col);             // vec-linear
        ExprId upd = b.fmul(b.fsub(xr_i, mu_i), b.fsub(xr_j, mu_j));
        ExprId sig_addr = b.ima(
            b.isub(b.ctrE(i), b.immI(static_cast<int32_t>(u * slice))),
            b.immI(static_cast<int32_t>(d)), col);
        b.compute(strfmt("rank1_%u", u), tiles, {r, i, jB, j}, {}, {},
                  {Builder::storeSram(ssigs[u], sig_addr, upd,
                                      /*accumulate=*/true)});
    }
    for (uint32_t u = 0; u < unroll; ++u) {
        b.storeTile(strfmt("storeSig%u", u), root, vsig, ssigs[u],
                    b.immI(static_cast<int32_t>(u * slice * d)), slice,
                    d, d);
    }

    AppInstance app;
    app.name = "GDA";
    app.prog = b.finish(root);
    app.load = [=](Runner &r2) {
        fillFloats(r2.dram(vx), 0x71, -1.0f, 1.0f);
        fillFloats(r2.dram(vmu), 0x72, -0.5f, 0.5f);
    };
    app.flops = 3.0 * static_cast<double>(pts) * d * d;
    app.dramBytes =
        4.0 * (static_cast<double>(pts) * d + d + static_cast<double>(d) * d);
    // Paper: 3,840,000 points x 96 dims.
    app.paperScale = (3.0 * 3.84e6 * 96 * 96) / app.flops;
    return app;
}

} // namespace plast::apps
