/**
 * @file
 * Black-Scholes European option pricing (Table 4): a deeply pipelined
 * floating-point kernel (dozens of FU stages, like the paper's ~80)
 * over streamed spot / strike / expiry arrays, producing call and put
 * prices. Compute-dense enough that the fabric parallelises it to the
 * memory-bound regime. Uses the Abramowitz-Stegun polynomial for the
 * cumulative normal distribution.
 */

#include "apps/apps.hpp"
#include "apps/common.hpp"

namespace plast::apps
{

using namespace pir;

namespace
{

/** CND(x) via the A&S 5-term polynomial; ~20 FU ops. */
ExprId
cnd(Builder &b, ExprId x)
{
    ExprId ax = b.alu(FuOp::kFAbs, x);
    ExprId k = b.alu(FuOp::kFRecip,
                     b.alu(FuOp::kFMA, ax, b.immF(0.2316419f),
                           b.immF(1.0f)));
    ExprId poly = b.immF(1.330274429f);
    poly = b.alu(FuOp::kFMA, poly, k, b.immF(-1.821255978f));
    poly = b.alu(FuOp::kFMA, poly, k, b.immF(1.781477937f));
    poly = b.alu(FuOp::kFMA, poly, k, b.immF(-0.356563782f));
    poly = b.alu(FuOp::kFMA, poly, k, b.immF(0.319381530f));
    poly = b.fmul(poly, k);
    ExprId pdf =
        b.fmul(b.immF(0.3989422804f),
               b.alu(FuOp::kFExp,
                     b.fmul(b.immF(-0.5f), b.fmul(ax, ax))));
    ExprId w = b.fmul(pdf, poly); // P(X > |x|)
    ExprId pos = b.fsub(b.immF(1.0f), w);
    return b.alu(FuOp::kMux, b.alu(FuOp::kFGe, x, b.immF(0.0f)), pos, w);
}

} // namespace

AppInstance
makeBlackScholes(Scale scale, uint32_t par)
{
    const uint64_t n = scale == Scale::kTiny ? 2048 : (1ull << 17);
    const double paper_n = 96e6;
    const float rate = 0.02f, vol = 0.30f;

    Builder b("BlackScholes");
    MemId spot = b.dram("spot", n);
    MemId strike = b.dram("strike", n);
    MemId expiry = b.dram("expiry", n);
    MemId call = b.dram("call", n);
    MemId put = b.dram("put", n);
    NodeId root = b.outer("root", CtrlScheme::kSequential, {}, kNone);

    const uint64_t chunk = n / par;
    for (uint32_t p = 0; p < par; ++p) {
        CtrId i = b.ctr(strfmt("i%u", p),
                        static_cast<int64_t>(p * chunk),
                        static_cast<int64_t>((p + 1) * chunk), 1, true);
        ExprId ie = b.ctrE(i);
        ExprId s = b.streamRef(0);
        ExprId k = b.streamRef(1);
        ExprId t = b.streamRef(2);

        ExprId sqrt_t = b.alu(FuOp::kFSqrt, t);
        ExprId vsq = b.fmul(b.immF(vol), sqrt_t);
        ExprId log_sk = b.alu(FuOp::kFLog, b.fdiv(s, k));
        ExprId drift = b.fmul(
            b.immF(rate + 0.5f * vol * vol), t);
        ExprId d1 = b.fdiv(b.fadd(log_sk, drift), vsq);
        ExprId d2 = b.fsub(d1, vsq);
        ExprId disc =
            b.alu(FuOp::kFExp, b.fmul(b.immF(-rate), t)); // e^{-rT}
        ExprId kd = b.fmul(k, disc);
        ExprId nd1 = cnd(b, d1);
        ExprId nd2 = cnd(b, d2);
        ExprId c = b.fsub(b.fmul(s, nd1), b.fmul(kd, nd2));
        // put = K e^{-rT} N(-d2) - S N(-d1) = c + Ke^{-rT} - S
        ExprId pv = b.fsub(b.fadd(c, kd), s);

        b.compute(strfmt("bs%u", p), root, {i},
                  {StreamIn{spot, ie}, StreamIn{strike, ie},
                   StreamIn{expiry, ie}},
                  {},
                  {Builder::streamOut(call, ie, c),
                   Builder::streamOut(put, ie, pv)});
    }

    AppInstance app;
    app.name = "BlackScholes";
    app.prog = b.finish(root);
    app.load = [=](Runner &r) {
        fillFloats(r.dram(spot), 0x51, 20.0f, 120.0f);
        fillFloats(r.dram(strike), 0x52, 20.0f, 120.0f);
        fillFloats(r.dram(expiry), 0x53, 0.1f, 2.0f);
    };
    app.flops = 60.0 * static_cast<double>(n);
    app.dramBytes = 20.0 * static_cast<double>(n);
    app.paperScale = paper_n / static_cast<double>(n);
    return app;
}

} // namespace plast::apps
