#include "apps/apps.hpp"

namespace plast::apps
{

const std::vector<AppSpec> &
allApps()
{
    static const std::vector<AppSpec> specs = {
        {"InnerProduct", false,
         [](Scale s) { return makeInnerProduct(s, s == Scale::kTiny ? 2 : 4); }},
        {"OuterProduct", false,
         [](Scale s) { return makeOuterProduct(s); }},
        {"Black-Scholes", false,
         [](Scale s) { return makeBlackScholes(s, s == Scale::kTiny ? 2 : 2); }},
        {"TPC-H Query 6", false, [](Scale s) { return makeTpchQ6(s, s == Scale::kTiny ? 2 : 4); }},
        {"GEMM", false, [](Scale s) { return makeGemm(s); }},
        {"GDA", false, [](Scale s) { return makeGda(s); }},
        {"LogReg", false, [](Scale s) { return makeLogReg(s); }},
        {"SGD", false, [](Scale s) { return makeSgd(s); }},
        {"Kmeans", false, [](Scale s) { return makeKmeans(s); }},
        {"CNN", false, [](Scale s) { return makeCnn(s); }},
        {"SMDV", true, [](Scale s) { return makeSmdv(s); }},
        {"PageRank", true, [](Scale s) { return makePageRank(s); }},
        {"BFS", true, [](Scale s) { return makeBfs(s); }},
    };
    return specs;
}

} // namespace plast::apps
