/**
 * @file
 * Single-precision GEMM (Table 4): C = A x B with a three-level tile
 * hierarchy. A and B tiles are double-buffered under a metapipelined
 * (i, j) tile loop; the k tile loop accumulates partial products into
 * the C tile in place (PMU read-modify-write with periodic clearing);
 * the inner pattern is a per-lane fold over a 16-wide output slice.
 */

#include "apps/apps.hpp"
#include "apps/common.hpp"

namespace plast::apps
{

using namespace pir;

AppInstance
makeGemm(Scale scale)
{
    // C[m x p] = A[m x n] * B[n x p]
    const int64_t m = scale == Scale::kTiny ? 32 : 64;
    const int64_t n = scale == Scale::kTiny ? 64 : 256;
    const int64_t p = scale == Scale::kTiny ? 32 : 128;
    const int64_t ti = 16, tk = 32, tj = 32;

    Builder b("GEMM");
    MemId va = b.dram("A", static_cast<uint64_t>(m * n));
    MemId vb = b.dram("B", static_cast<uint64_t>(n * p));
    MemId vc = b.dram("C", static_cast<uint64_t>(m * p));
    const uint32_t unroll = scale == Scale::kTiny ? 2 : 8;
    const int64_t slice = ti / unroll; ///< output rows per parallel PCU
    MemId sa = b.sram("aTile", static_cast<uint64_t>(ti * tk));
    MemId sb = b.sram("bTile", static_cast<uint64_t>(tk * tj));
    std::vector<MemId> scs;
    for (uint32_t u = 0; u < unroll; ++u)
        scs.push_back(b.sram(strfmt("cTile%u", u),
                             static_cast<uint64_t>(slice * tj)));

    NodeId root = b.outer("root", CtrlScheme::kSequential, {}, kNone);
    CtrId iT = b.ctr("iT", 0, m / ti);
    CtrId jT = b.ctr("jT", 0, p / tj);
    NodeId ij = b.outer("ijTiles", CtrlScheme::kMetapipe, {iT, jT}, root);
    for (MemId sc : scs)
        b.clearAccumAt(sc, ij); // C slices accumulate across k tiles
    CtrId kT = b.ctr("kT", 0, n / tk);
    NodeId kseq = b.outer("kTiles", CtrlScheme::kMetapipe, {kT}, ij);

    // A tile: rows ti x words tk from A[iT*ti, kT*tk].
    ExprId a_base = b.iadd(
        b.imul(b.ctrE(iT), b.immI(static_cast<int32_t>(ti * n))),
        b.imul(b.ctrE(kT), b.immI(static_cast<int32_t>(tk))));
    b.loadTile("loadA", kseq, va, sa, a_base, ti, tk, n);
    // B tile: rows tk x words tj from B[kT*tk, jT*tj].
    ExprId b_base = b.iadd(
        b.imul(b.ctrE(kT), b.immI(static_cast<int32_t>(tk * p))),
        b.imul(b.ctrE(jT), b.immI(static_cast<int32_t>(tj))));
    b.loadTile("loadB", kseq, vb, sb, b_base, tk, tj, p);

    // Inner pattern, unrolled: each parallel PCU covers `slice` output
    // rows and accumulates over kk with 16 lanes of jj.
    for (uint32_t u = 0; u < unroll; ++u) {
        CtrId ii = b.ctr(strfmt("ii%u", u),
                         static_cast<int64_t>(u) * slice,
                         static_cast<int64_t>(u + 1) * slice);
        CtrId jjB = b.ctr(strfmt("jjB%u", u), 0, tj / 16);
        CtrId kk = b.ctr(strfmt("kk%u", u), 0, tk);
        CtrId jj = b.ctr(strfmt("jj%u", u), 0, 16, 1, true);
        ExprId av = b.load(
            sa,
            b.ima(b.ctrE(ii), b.immI(static_cast<int32_t>(tk)),
                  b.ctrE(kk)));                     // broadcast
        ExprId col = b.ima(b.ctrE(jjB), b.immI(16), b.ctrE(jj));
        ExprId bv = b.load(
            sb, b.ima(b.ctrE(kk), b.immI(static_cast<int32_t>(tj)),
                      col));
        ExprId c_addr = b.ima(
            b.isub(b.ctrE(ii),
                   b.immI(static_cast<int32_t>(u * slice))),
            b.immI(static_cast<int32_t>(tj)), col);
        Sink acc = Builder::foldToSram(FuOp::kFAdd, b.fmul(av, bv), kk,
                                       scs[u], c_addr,
                                       /*accumulate=*/true,
                                       /*crossLane=*/false);
        b.compute(strfmt("mac%u", u), kseq, {ii, jjB, kk, jj}, {}, {},
                  {acc});
    }

    // Store the finished C slices.
    for (uint32_t u = 0; u < unroll; ++u) {
        ExprId c_base = b.iadd(
            b.iadd(b.imul(b.ctrE(iT),
                          b.immI(static_cast<int32_t>(ti * p))),
                   b.imul(b.ctrE(jT),
                          b.immI(static_cast<int32_t>(tj)))),
            b.immI(static_cast<int32_t>(u * slice * p)));
        b.storeTile(strfmt("storeC%u", u), ij, vc, scs[u], c_base,
                    slice, tj, p);
    }

    AppInstance app;
    app.name = "GEMM";
    app.prog = b.finish(root);
    app.load = [va, vb](Runner &r) {
        fillFloats(r.dram(va), 0x61, -1.0f, 1.0f);
        fillFloats(r.dram(vb), 0x62, -1.0f, 1.0f);
    };
    app.flops = 2.0 * static_cast<double>(m) * n * p;
    app.dramBytes =
        4.0 * (static_cast<double>(m) * n * (p / tj) +
               static_cast<double>(n) * p * (m / ti) +
               static_cast<double>(m) * p);
    // Paper: [47 x 7680] * [7680 x 3840]
    app.paperScale = (2.0 * 47 * 7680 * 3840) / app.flops;
    return app;
}

} // namespace plast::apps
