/**
 * @file
 * Inner product (Table 4): dot product of two large streamed vectors.
 * Memory-bandwidth bound: two DRAM streams feed a multiply and a
 * cross-lane fold; `par` parallel partial folds are combined at the
 * end (outer-loop unrolling as user-specified parallelization, §3.6).
 */

#include "apps/apps.hpp"
#include "apps/common.hpp"

namespace plast::apps
{

using namespace pir;

AppInstance
makeInnerProduct(Scale scale, uint32_t par)
{
    const double paper_n = 768e6;
    const uint64_t n = scale == Scale::kTiny ? 4096
                       : scale == Scale::kPaper
                           ? static_cast<uint64_t>(paper_n)
                           : (1ull << 20);

    Builder b("InnerProduct");
    MemId va = b.dram("a", n);
    MemId vb = b.dram("b", n);
    int32_t out = b.argOut();
    NodeId root = b.outer("root", CtrlScheme::kSequential, {}, kNone);

    std::vector<ScalarIn> parts;
    const uint64_t chunk = n / par;
    for (uint32_t p = 0; p < par; ++p) {
        CtrId i = b.ctr(strfmt("i%u", p),
                        static_cast<int64_t>(p * chunk),
                        static_cast<int64_t>((p + 1) * chunk), 1,
                        /*vectorized=*/true);
        ExprId ie = b.ctrE(i);
        ExprId prod = b.fmul(b.streamRef(0), b.streamRef(1));
        Sink fold = Builder::foldToScalar(FuOp::kFAdd, prod, i);
        NodeId leaf =
            b.compute(strfmt("dot%u", p), root, {i},
                      {StreamIn{va, ie}, StreamIn{vb, ie}}, {}, {fold});
        parts.push_back({leaf, 0});
    }
    combineScalars(b, root, parts, FuOp::kFAdd, out);

    AppInstance app;
    app.name = "InnerProduct";
    app.prog = b.finish(root);
    app.load = [va, vb](Runner &r) {
        fillFloats(r.dram(va), 0x11, 0.0f, 1.0f);
        fillFloats(r.dram(vb), 0x22, 0.0f, 1.0f);
    };
    app.flops = 2.0 * static_cast<double>(n);
    app.dramBytes = 8.0 * static_cast<double>(n);
    app.sparse = false;
    app.paperScale = paper_n / static_cast<double>(n);
    return app;
}

} // namespace plast::apps
