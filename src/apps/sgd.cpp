/**
 * @file
 * Stochastic gradient descent for linear regression (Table 4):
 * minibatch updates under an inherently sequential outer loop — each
 * minibatch computes predictions, residuals, and a gradient that
 * immediately updates the in-place weight vector before the next
 * minibatch starts (loop-carried dependence through w).
 */

#include "apps/apps.hpp"
#include "apps/common.hpp"

namespace plast::apps
{

using namespace pir;

AppInstance
makeSgd(Scale scale)
{
    const int64_t d = 64;
    const int64_t mb = 64; ///< minibatch size
    const int64_t nmb = scale == Scale::kTiny ? 2 : 8;
    const int64_t epochs = 2;
    const float lr = 0.05f;
    const int64_t pts = mb * nmb;

    Builder b("SGD");
    MemId vx = b.dram("x", static_cast<uint64_t>(pts * d));
    MemId vy = b.dram("y", static_cast<uint64_t>(pts));
    MemId vw0 = b.dram("w0", static_cast<uint64_t>(d));
    MemId vw = b.dram("w", static_cast<uint64_t>(d));
    MemId sw = b.sram("wS", static_cast<uint64_t>(d));
    MemId sx = b.sram("xT", static_cast<uint64_t>(mb * d));
    MemId sy = b.sram("yT", static_cast<uint64_t>(mb));
    MemId sdot = b.sram("dotT", static_cast<uint64_t>(mb));
    MemId sdel = b.sram("delT", static_cast<uint64_t>(mb));
    MemId sg = b.sram("gradS", static_cast<uint64_t>(d));

    NodeId root = b.outer("root", CtrlScheme::kSequential, {}, kNone);
    b.loadTile("loadW", root, vw0, sw, b.immI(0), 1, d, 0);
    CtrId e = b.ctr("e", 0, epochs);
    CtrId m = b.ctr("m", 0, nmb);
    NodeId loop = b.outer("mbLoop", CtrlScheme::kSequential, {e, m}, root);
    b.clearAccumAt(sg, loop);
    b.clearAccumAt(sw, kNeverClear);

    b.loadTile("loadX", loop, vx, sx,
               b.imul(b.ctrE(m), b.immI(static_cast<int32_t>(mb * d))),
               mb, d, d);
    b.loadTile("loadY", loop, vy, sy,
               b.imul(b.ctrE(m), b.immI(static_cast<int32_t>(mb))), 1,
               mb, 0);

    CtrId r = b.ctr("r", 0, mb);
    CtrId dB = b.ctr("dB", 0, d / 16);
    CtrId dd = b.ctr("dd", 0, 16, 1, true);
    ExprId di = b.iadd(b.imul(b.ctrE(dB), b.immI(16)), b.ctrE(dd));
    ExprId wv = b.load(sw, di);
    ExprId xv = b.load(
        sx, b.iadd(b.imul(b.ctrE(r), b.immI(static_cast<int32_t>(d))),
                   di));
    b.compute("dot", loop, {r, dB, dd}, {}, {},
              {Builder::foldToSram(FuOp::kFAdd, b.fmul(wv, xv), dB, sdot,
                                   b.ctrE(r))});

    CtrId rB = b.ctr("rB", 0, mb / 16);
    CtrId rr = b.ctr("rr", 0, 16, 1, true);
    ExprId ri = b.iadd(b.imul(b.ctrE(rB), b.immI(16)), b.ctrE(rr));
    ExprId resid = b.fsub(b.load(sdot, ri), b.load(sy, ri));
    b.compute("resid", loop, {rB, rr}, {}, {},
              {Builder::storeSram(sdel, ri, resid)});

    CtrId r2 = b.ctr("r2", 0, mb);
    CtrId dB2 = b.ctr("dB2", 0, d / 16);
    CtrId dd2 = b.ctr("dd2", 0, 16, 1, true);
    ExprId dj = b.iadd(b.imul(b.ctrE(dB2), b.immI(16)), b.ctrE(dd2));
    ExprId del_r = b.load(sdel, b.ctrE(r2)); // broadcast
    ExprId x_rj = b.load(
        sx, b.iadd(b.imul(b.ctrE(r2), b.immI(static_cast<int32_t>(d))),
                   dj));
    b.compute("grad", loop, {r2, dB2, dd2}, {}, {},
              {Builder::storeSram(sg, dj, b.fmul(del_r, x_rj), true)});

    CtrId dB3 = b.ctr("dB3", 0, d / 16);
    CtrId dd3 = b.ctr("dd3", 0, 16, 1, true);
    ExprId dj3 = b.iadd(b.imul(b.ctrE(dB3), b.immI(16)), b.ctrE(dd3));
    ExprId upd = b.fmul(b.immF(-lr / static_cast<float>(mb)),
                        b.load(sg, dj3));
    b.compute("update", loop, {dB3, dd3}, {}, {},
              {Builder::storeSram(sw, dj3, upd, true)});

    b.storeTile("storeW", root, vw, sw, b.immI(0), 1, d, 0);

    AppInstance app;
    app.name = "SGD";
    app.prog = b.finish(root);
    app.load = [=](Runner &rn) {
        fillFloats(rn.dram(vx), 0x91, -1.0f, 1.0f);
        fillFloats(rn.dram(vy), 0x92, -2.0f, 2.0f);
        fillFloats(rn.dram(vw0), 0x93, -0.1f, 0.1f);
    };
    app.flops = static_cast<double>(epochs) * pts * (4.0 * d + 4);
    app.dramBytes =
        4.0 * (static_cast<double>(epochs) * pts * (d + 1) + 2 * d);
    app.paperScale = (30.0 * 38400 * (4.0 * 768 + 4)) / app.flops;
    app.serialSteps = static_cast<double>(epochs) * nmb * 6;
    return app;
}

} // namespace plast::apps
