/**
 * @file
 * TPC-H Query 6 (Table 4): a filter-reduce over the lineitem table.
 * Four streamed columns (shipdate, discount, quantity, extended
 * price); rows passing the date / discount / quantity predicates
 * contribute price * discount to the revenue aggregate. The filter is
 * fused into the fold with a predicated select, exactly as the paper's
 * FlatMap-into-Fold pipeline.
 */

#include "apps/apps.hpp"
#include "apps/common.hpp"

namespace plast::apps
{

using namespace pir;

AppInstance
makeTpchQ6(Scale scale, uint32_t par)
{
    const uint64_t n = scale == Scale::kTiny ? 4096 : (1ull << 20);
    const double paper_n = 960e6;
    const int32_t kDateLo = 19940101, kDateHi = 19950101;
    const int32_t kQtyMax = 24;

    Builder b("TPCHQ6");
    MemId dates = b.dram("shipdate", n);
    MemId disc = b.dram("discount", n);
    MemId qty = b.dram("quantity", n);
    MemId price = b.dram("price", n);
    int32_t out = b.argOut();
    NodeId root = b.outer("root", CtrlScheme::kSequential, {}, kNone);

    std::vector<ScalarIn> parts;
    const uint64_t chunk = n / par;
    for (uint32_t p = 0; p < par; ++p) {
        CtrId i = b.ctr(strfmt("i%u", p),
                        static_cast<int64_t>(p * chunk),
                        static_cast<int64_t>((p + 1) * chunk), 1, true);
        ExprId ie = b.ctrE(i);
        ExprId d = b.streamRef(0);
        ExprId dc = b.streamRef(1);
        ExprId q = b.streamRef(2);
        ExprId pr = b.streamRef(3);
        ExprId cond =
            b.alu(FuOp::kAnd,
                  b.alu(FuOp::kAnd, b.alu(FuOp::kIGe, d, b.immI(kDateLo)),
                        b.alu(FuOp::kILt, d, b.immI(kDateHi))),
                  b.alu(FuOp::kAnd,
                        b.alu(FuOp::kAnd,
                              b.alu(FuOp::kFGe, dc, b.immF(0.05f)),
                              b.alu(FuOp::kFLe, dc, b.immF(0.07f))),
                        b.alu(FuOp::kILt, q, b.immI(kQtyMax))));
        ExprId contrib =
            b.alu(FuOp::kMux, cond, b.fmul(pr, dc), b.immF(0.0f));
        Sink fold = Builder::foldToScalar(FuOp::kFAdd, contrib, i);
        NodeId leaf = b.compute(
            strfmt("q6_%u", p), root, {i},
            {StreamIn{dates, ie}, StreamIn{disc, ie}, StreamIn{qty, ie},
             StreamIn{price, ie}},
            {}, {fold});
        parts.push_back({leaf, 0});
    }
    combineScalars(b, root, parts, FuOp::kFAdd, out);

    AppInstance app;
    app.name = "TPCHQ6";
    app.prog = b.finish(root);
    app.load = [=](Runner &r) {
        fillInts(r.dram(dates), 0x41, 19960000);
        for (auto &w : r.dram(dates))
            w = intToWord(19930000 + wordToInt(w) % 30000);
        fillFloats(r.dram(disc), 0x42, 0.0f, 0.1f);
        fillInts(r.dram(qty), 0x43, 50);
        fillFloats(r.dram(price), 0x44, 100.0f, 1000.0f);
    };
    app.flops = 8.0 * static_cast<double>(n);
    app.dramBytes = 16.0 * static_cast<double>(n);
    app.paperScale = paper_n / static_cast<double>(n);
    return app;
}

} // namespace plast::apps
