/**
 * @file
 * PageRank (Table 4): per iteration, a dense pass divides each page's
 * rank by its out-degree into a contribution array, then a sparse pass
 * gathers predecessor contributions through the coalescing units and
 * folds them with the damping post-op rank' = (1-d)/N + d * sum.
 * Links use a fixed in-degree (ELL-style) layout.
 */

#include "apps/apps.hpp"
#include "apps/common.hpp"

namespace plast::apps
{

using namespace pir;

AppInstance
makePageRank(Scale scale)
{
    const int64_t n = scale == Scale::kTiny ? 128 : 512; ///< pages
    const int64_t l = 8;  ///< in-links per page (paper E[edges] = 8)
    const int64_t rt = 64;
    const int64_t iters = 2;
    const float damp = 0.85f;

    Builder b("PageRank");
    MemId vlinks = b.dram("links", static_cast<uint64_t>(n * l));
    MemId vrank = b.dram("rank", static_cast<uint64_t>(n));
    MemId vdeg = b.dram("deg", static_cast<uint64_t>(n));
    MemId vcontrib = b.dram("contrib", static_cast<uint64_t>(n));
    MemId slinks = b.sram("linksT", static_cast<uint64_t>(rt * l));
    MemId scg = b.sram("cg", static_cast<uint64_t>(rt * l));
    MemId snew = b.sram("newT", static_cast<uint64_t>(rt));

    NodeId root = b.outer("root", CtrlScheme::kSequential, {}, kNone);
    CtrId it = b.ctr("it", 0, iters);
    NodeId iter = b.outer("iter", CtrlScheme::kSequential, {it}, root);

    // Phase 1: contrib[p] = rank[p] / deg[p] (streaming).
    CtrId p = b.ctr("p", 0, n, 1, true);
    ExprId pe = b.ctrE(p);
    ExprId contrib = b.fdiv(b.streamRef(0), b.streamRef(1));
    b.compute("contrib", iter, {p},
              {StreamIn{vrank, pe}, StreamIn{vdeg, pe}}, {},
              {Builder::streamOut(vcontrib, pe, contrib)});

    // Phase 2: gather predecessor contributions, damped fold.
    CtrId t = b.ctr("t", 0, n / rt);
    NodeId tiles = b.outer("tiles", CtrlScheme::kMetapipe, {t}, iter);
    ExprId lbase =
        b.imul(b.ctrE(t), b.immI(static_cast<int32_t>(rt * l)));
    b.loadTile("loadLinks", tiles, vlinks, slinks, lbase, 1, rt * l, 0);
    b.gather("gatherC", tiles, vcontrib, slinks, scg, rt * l);

    CtrId r = b.ctr("r", 0, rt);
    CtrId j = b.ctr("j", 0, l, 1, true);
    ExprId cidx =
        b.iadd(b.imul(b.ctrE(r), b.immI(static_cast<int32_t>(l))),
               b.ctrE(j));
    Sink fold = Builder::foldToSram(FuOp::kFAdd, b.load(scg, cidx), j,
                                    snew, b.ctrE(r));
    fold.postScale = b.immF(damp);
    fold.postOffset = b.immF((1.0f - damp) / static_cast<float>(n));
    b.compute("damp", tiles, {r, j}, {}, {}, {fold});

    b.storeTile("storeRank", tiles, vrank, snew,
                b.imul(b.ctrE(t), b.immI(static_cast<int32_t>(rt))), 1,
                rt, 0);

    AppInstance app;
    app.name = "PageRank";
    app.prog = b.finish(root);
    app.load = [=](Runner &rn) {
        // Random graph; degrees >= 1 so the divide is safe.
        fillInts(rn.dram(vlinks), 0xd1, static_cast<int32_t>(n));
        auto &deg = rn.dram(vdeg);
        Rng rng(0xd2);
        for (auto &w : deg)
            w = floatToWord(
                1.0f + static_cast<float>(rng.nextBounded(12)));
        for (auto &w : rn.dram(vrank))
            w = floatToWord(1.0f / static_cast<float>(n));
    };
    app.flops = static_cast<double>(iters) * (n + 2.0 * n * l);
    app.dramBytes = 4.0 * iters * (3.0 * n + 2.0 * n * l);
    app.sparse = true;
    app.paperScale = (100.0 * (7680 + 2.0 * 7680 * 8)) / app.flops;
    return app;
}

} // namespace plast::apps
