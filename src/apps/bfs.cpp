/**
 * @file
 * Breadth-first search (Table 4): a data-dependent frontier traversal
 * over a layered synthetic graph (paper: E[edges]/node = 8, 10
 * layers). Each level: (1) FlatMap over all nodes builds the frontier
 * from the distance array (dynamic count, deduplicated by
 * construction); (2) an address pipeline expands frontier nodes to
 * edge slots through an on-chip gather; (3) two DRAM gathers fetch
 * neighbor ids and their distances; (4) a predicated scatter marks
 * newly discovered nodes. Every loop bound downstream of the FlatMap
 * is a runtime scalar (count x edges-per-node).
 */

#include "apps/apps.hpp"
#include "apps/common.hpp"

namespace plast::apps
{

using namespace pir;

AppInstance
makeBfs(Scale scale)
{
    const int64_t levels = scale == Scale::kTiny ? 4 : 6;
    const int64_t layer = scale == Scale::kTiny ? 48 : 128;
    const int64_t n = layer * levels;
    const int64_t e = 8; ///< edges per node

    Builder b("BFS");
    MemId vedges = b.dram("edges", static_cast<uint64_t>(n * e));
    MemId vdist = b.dram("dist", static_cast<uint64_t>(n));
    MemId sfront = b.sram("frontier", static_cast<uint64_t>(n),
                          BankingMode::kDup);
    MemId saddr = b.sram("eaddr", static_cast<uint64_t>(layer * e));
    MemId snbr = b.sram("nbrs", static_cast<uint64_t>(layer * e));
    MemId sdg = b.sram("ndist", static_cast<uint64_t>(layer * e));

    NodeId root = b.outer("root", CtrlScheme::kSequential, {}, kNone);
    CtrId lv = b.ctr("lv", 0, levels);
    NodeId level = b.outer("level", CtrlScheme::kSequential, {lv}, root);

    // (1) frontier = { nodes with dist == lv } (dedup by construction)
    CtrId nv = b.ctr("nv", 0, n, 1, true);
    ExprId ne = b.ctrE(nv);
    ExprId is_cur = b.alu(FuOp::kIEq, b.streamRef(0), b.ctrE(lv));
    NodeId leaf_f =
        b.compute("frontier", level, {nv}, {StreamIn{vdist, ne}}, {},
                  {Builder::flatMap(sfront, ne, is_cur)});

    // (2) expand to edge-slot addresses: eaddr[i] = frontier[i/e]*e + i%e
    CtrId i1 = b.ctrDyn("i1", leaf_f, 0, 0, 1, true,
                        static_cast<int32_t>(e));
    ExprId fid = b.load(
        sfront, b.alu(FuOp::kShr, b.ctrE(i1), b.immI(3))); // i / 8
    ExprId slot = b.alu(FuOp::kAnd, b.ctrE(i1), b.immI(7));
    ExprId eaddr = b.ima(fid, b.immI(static_cast<int32_t>(e)), slot);
    NodeId leaf_a =
        b.compute("expand", level, {i1}, {}, {},
                  {Builder::storeSram(saddr, b.ctrE(i1), eaddr)});
    (void)leaf_a;

    // (3) gather neighbor ids, then their distances.
    b.gather("gatherNbrs", level, vedges, saddr, snbr, layer * e, leaf_f,
             0, static_cast<int32_t>(e));
    b.gather("gatherDist", level, vdist, snbr, sdg, layer * e, leaf_f, 0,
             static_cast<int32_t>(e));

    // (4) scatter lv+1 to unvisited neighbors.
    CtrId i2 = b.ctrDyn("i2", leaf_f, 0, 0, 1, true,
                        static_cast<int32_t>(e));
    ExprId nbr = b.load(snbr, b.ctrE(i2));
    ExprId nd = b.load(sdg, b.ctrE(i2));
    ExprId unvisited = b.alu(FuOp::kIEq, nd, b.immI(-1));
    ExprId next_lv = b.iadd(b.ctrE(lv), b.immI(1));
    b.compute("visit", level, {i2}, {}, {},
              {Builder::scatterOut(vdist, nbr, next_lv, unvisited)});

    AppInstance app;
    app.name = "BFS";
    app.prog = b.finish(root);
    app.load = [=](Runner &rn) {
        // Layered graph: each node's e edges go to the next layer
        // (the last layer points back into itself, already visited).
        Rng rng(0xe1);
        auto &edges = rn.dram(vedges);
        for (int64_t node = 0; node < n; ++node) {
            int64_t lyr = node / layer;
            int64_t next_base = std::min(lyr + 1, levels - 1) * layer;
            for (int64_t k = 0; k < e; ++k) {
                edges[static_cast<size_t>(node * e + k)] =
                    intToWord(static_cast<int32_t>(
                        next_base +
                        static_cast<int64_t>(rng.nextBounded(
                            static_cast<uint64_t>(layer)))));
            }
        }
        auto &dist = rn.dram(vdist);
        for (auto &w : dist)
            w = intToWord(-1);
        dist[0] = intToWord(0); // the root lives in layer 0
    };
    app.flops = static_cast<double>(levels) * (n + 4.0 * layer * e);
    app.dramBytes =
        4.0 * levels * (static_cast<double>(n) + 3.0 * layer * e);
    app.sparse = true;
    app.paperScale = (8.0 * 10 * 4096) / app.flops;
    return app;
}

} // namespace plast::apps
