#include "fuzz/harness.hpp"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "base/logging.hpp"
#include "fuzz/shrink.hpp"
#include "pir/serialize.hpp"
#include "pir/validate.hpp"
#include "runtime/runner.hpp"

namespace plast::fuzz
{

using namespace pir;

FuzzCase
caseForSeed(uint64_t caseSeed, uint32_t inject)
{
    Rng rng(caseSeed);
    FuzzCase c;
    // Fixed draw order: the architecture first, then the program.
    c.params = sampleArch(rng);
    c.prog = generateProgram(rng);
    c.inject = inject;
    return c;
}

std::function<void(FabricConfig &)>
reduceStageFault()
{
    return [](FabricConfig &cfg) {
        for (auto &pcu : cfg.pcus) {
            if (!pcu.used)
                continue;
            for (auto &st : pcu.stages) {
                if (st.kind != StageKind::kReduceStep)
                    continue;
                // The flipped op must stay a reduction combiner: the
                // simulator derives masked-lane identity values from
                // the stage op via fuOpIdentity, which rejects
                // non-associative ops.
                switch (st.op) {
                  case FuOp::kFAdd: st.op = FuOp::kFMin; break;
                  case FuOp::kIAdd: st.op = FuOp::kIMax; break;
                  case FuOp::kFMin: st.op = FuOp::kFMax; break;
                  case FuOp::kFMax: st.op = FuOp::kFMin; break;
                  case FuOp::kIMin: st.op = FuOp::kIMax; break;
                  case FuOp::kIMax: st.op = FuOp::kIMin; break;
                  default: st.op = FuOp::kFMin; break;
                }
                return; // one flipped stage is the whole fault
            }
        }
    };
}

FuzzCase
oversizeCaseForSeed(uint64_t caseSeed)
{
    Rng rng(caseSeed);
    FuzzCase c;
    c.params = sampleTightArch(rng);
    c.prog = generateProgram(rng);
    c.expectDiagnosed = true;
    return c;
}

DiffResult
runOversizeCase(const FuzzCase &c)
{
    DiffResult res;
    Runner r(c.prog, c.params);
    fillInputs(r, c.prog);
    Status st = r.tryCompile();
    if (!st.ok()) {
        // The failure must be a structured diagnosis, not a bare
        // error: compile errors carry the binding resource.
        if (st.message().empty()) {
            res.status = DiffResult::Status::kMismatch;
            res.detail = "compile failure with empty message";
            return res;
        }
        if (st.code() == StatusCode::kCompileError &&
            r.report().diag.binding.empty()) {
            res.status = DiffResult::Status::kMismatch;
            res.detail = strfmt("undiagnosed compile failure: %s",
                                st.message().c_str());
            return res;
        }
        res.detail = strfmt(
            "diagnosed (%s)",
            st.code() == StatusCode::kCompileError
                ? r.report().diag.binding.c_str()
                : statusCodeName(st.code()));
        return res;
    }
    // The design fit — possibly only via capacity spilling. A spilled
    // compile must still compute bit-identical results.
    Runner::Result out;
    Status rv = r.tryRunValidated(out);
    if (!rv.ok()) {
        res.status = DiffResult::Status::kMismatch;
        res.detail = strfmt("compiled design failed validation: %s",
                            rv.message().c_str());
        return res;
    }
    res.cycles = out.cycles;
    if (!r.report().diag.spills.empty())
        res.detail = strfmt("spilled %zu and validated",
                            r.report().diag.spills.size());
    return res;
}

DiffResult
runCase(const FuzzCase &c, bool checkDense)
{
    if (c.expectDiagnosed)
        return runOversizeCase(c);
    DiffOptions d;
    d.checkDense = checkDense;
    if (c.inject == 1)
        d.tweak = reduceStageFault();
    else if (c.inject >= 2)
        d.injectMode = c.inject;
    return diffRun(c.prog, c.params, d);
}

void
writeSeedFile(std::ostream &os, const FuzzCase &c)
{
    const ArchParams &p = c.params;
    os << "# fuzz_pir reproducer (replay with: fuzz_pir --replay <file>)\n";
    os << "arch " << p.gridCols << ' ' << p.gridRows << ' '
       << p.pcu.stages << ' ' << p.pcu.fifoDepth << ' '
       << p.pmu.bankKilobytes << ' ' << p.dram.channels << ' '
       << p.dram.queueDepth << ' ' << p.vectorTracks << ' '
       << p.scalarTracks << ' ' << p.numAgs << '\n';
    os << "inject " << c.inject << '\n';
    if (c.expectDiagnosed)
        os << "expect diagnosed\n";
    writeProgram(os, c.prog);
}

bool
readSeedFile(std::istream &is, FuzzCase &out, std::string *err)
{
    auto fail = [&](const std::string &msg) {
        if (err)
            *err = msg;
        return false;
    };
    // The header is line-oriented; '#' lines are comments.
    auto nextLine = [&](std::string &out) -> bool {
        std::string line;
        while (std::getline(is, line)) {
            size_t p = line.find_first_not_of(" \t\r");
            if (p == std::string::npos || line[p] == '#')
                continue;
            out = line;
            return true;
        }
        return false;
    };
    std::string line, tok;
    if (!nextLine(line))
        return fail("empty seed file");
    std::istringstream arch(line);
    ArchParams p = ArchParams::plasticineFinal();
    if (!(arch >> tok) || tok != "arch" ||
        !(arch >> p.gridCols >> p.gridRows >> p.pcu.stages >>
          p.pcu.fifoDepth >> p.pmu.bankKilobytes >> p.dram.channels >>
          p.dram.queueDepth >> p.vectorTracks >> p.scalarTracks >>
          p.numAgs))
        return fail("seed file must start with an 'arch' line");
    p.pmu.fifoDepth = p.pcu.fifoDepth;
    uint32_t inj = 0;
    if (!nextLine(line))
        return fail("expected 'inject' line after 'arch'");
    std::istringstream injs(line);
    if (!(injs >> tok) || tok != "inject" || !(injs >> inj))
        return fail("expected 'inject' line after 'arch'");
    out.params = p;
    out.inject = inj;
    // Optional 'expect diagnosed' line (oversize reproducers). Peek
    // manually so the program header line is left for readProgram.
    out.expectDiagnosed = false;
    std::streampos pos = is.tellg();
    std::string probe;
    while (std::getline(is, probe)) {
        size_t pch = probe.find_first_not_of(" \t\r");
        if (pch == std::string::npos || probe[pch] == '#') {
            pos = is.tellg();
            continue;
        }
        std::istringstream ex(probe);
        std::string what;
        if ((ex >> tok) && tok == "expect") {
            if (!(ex >> what) || what != "diagnosed")
                return fail("unknown 'expect' directive");
            out.expectDiagnosed = true;
        } else {
            is.clear();
            is.seekg(pos);
        }
        break;
    }
    return readProgram(is, out.prog, err);
}

DiffResult
replayFile(const std::string &path, bool checkDense)
{
    DiffResult res;
    std::ifstream is(path);
    if (!is) {
        res.status = DiffResult::Status::kInvalid;
        res.detail = "cannot open " + path;
        return res;
    }
    FuzzCase c;
    std::string err;
    if (!readSeedFile(is, c, &err)) {
        res.status = DiffResult::Status::kInvalid;
        res.detail = path + ": " + err;
        return res;
    }
    return runCase(c, checkDense);
}

FuzzStats
fuzz(const FuzzOptions &opts)
{
    FuzzStats stats;
    Rng seedRng(opts.seed);
    const auto t0 = std::chrono::steady_clock::now();
    auto expired = [&] {
        if (opts.timeBudgetSec == 0)
            return false;
        auto dt = std::chrono::steady_clock::now() - t0;
        return std::chrono::duration_cast<std::chrono::seconds>(dt)
                   .count() >= static_cast<int64_t>(opts.timeBudgetSec);
    };

    for (uint32_t run = 0; run < opts.runs && !expired(); ++run) {
        const uint64_t caseSeed = seedRng.next();
        FuzzCase c = opts.oversize
                         ? oversizeCaseForSeed(caseSeed)
                         : caseForSeed(caseSeed, opts.inject);
        DiffResult d = runCase(c, opts.checkDense);
        ++stats.executed;
        if (opts.progress)
            std::fprintf(stderr,
                         "[fuzz] run %u seed 0x%016llx: %s%s%s\n", run,
                         static_cast<unsigned long long>(caseSeed),
                         d.ok() ? "ok"
                         : d.status == DiffResult::Status::kUnmappable
                             ? "unmappable"
                             : "MISMATCH",
                         d.detail.empty() ? "" : " — ",
                         d.detail.c_str());
        switch (d.status) {
          case DiffResult::Status::kOk:
            ++stats.okRuns;
            continue;
          case DiffResult::Status::kUnmappable:
            ++stats.unmappable;
            continue;
          case DiffResult::Status::kInvalid:
            // Generator bug: surface loudly but keep fuzzing.
            warn("seed 0x%016llx generated invalid program: %s",
                 static_cast<unsigned long long>(caseSeed),
                 d.detail.c_str());
            ++stats.mismatches;
            stats.details.push_back(d.detail);
            continue;
          case DiffResult::Status::kMismatch:
            break;
        }

        ++stats.mismatches;
        stats.details.push_back(d.detail);
        FuzzCase minimal = c;
        if (opts.shrink) {
            auto stillFails = [&](const Program &cand) {
                FuzzCase probe{cand, c.params, c.inject,
                               c.expectDiagnosed};
                return runCase(probe, opts.checkDense).mismatch();
            };
            ShrinkResult sr = shrinkProgram(c.prog, stillFails);
            minimal.prog = sr.prog;
            if (opts.progress)
                std::fprintf(stderr,
                             "[fuzz] shrunk to %zu nodes in %d steps\n",
                             minimal.prog.nodes.size(), sr.accepted);
        }
        if (!opts.saveDir.empty()) {
            std::string path =
                opts.saveDir +
                strfmt("/seed_%016llx.pir",
                       static_cast<unsigned long long>(caseSeed));
            std::ofstream os(path);
            if (os) {
                os << "# detail: " << d.detail << '\n';
                writeSeedFile(os, minimal);
                stats.savedFiles.push_back(path);
            } else {
                warn("cannot write reproducer %s", path.c_str());
            }
        }
    }
    return stats;
}

} // namespace plast::fuzz
