/**
 * @file
 * Seeded random generation of PIR programs and architecture
 * parameters for differential fuzzing.
 *
 * Programs are built through pir::Builder from a small library of
 * kernel templates (stream-folds, tiled maps, SRAM producer/consumer
 * chains, FlatMap pipelines), so every generated program passes
 * pir::validateProgram by construction. All randomness is drawn from a
 * caller-supplied Rng: the same seed always yields the same (program,
 * architecture) pair on every platform.
 */

#ifndef PLAST_FUZZ_GENERATOR_HPP
#define PLAST_FUZZ_GENERATOR_HPP

#include "arch/params.hpp"
#include "base/rng.hpp"
#include "pir/ir.hpp"

namespace plast::fuzz
{

/**
 * Sample a legal ArchParams point. Lanes and banks stay at 16 (the
 * compiler's vectorization width); everything else varies within the
 * design-space bounds swept by the paper's Figure 7.
 */
ArchParams sampleArch(Rng &rng);

/**
 * Sample a deliberately undersized ArchParams point: tiny grids, few
 * AGs, one or two tracks per link, kilobyte scratchpads. Programs from
 * generateProgram frequently exceed these fabrics, exercising the
 * compiler's pre-check / spill / diagnosed-failure paths (the
 * `fuzz_pir --oversize` mode).
 */
ArchParams sampleTightArch(Rng &rng);

/**
 * Generate a random valid program: 1-3 independent kernels under a
 * sequential root, each wrapped in its own outer controller so the
 * shrinker can drop whole kernels at once. DRAM input buffers follow
 * the fill-by-name convention of fuzz::fillInputs ('f...' = floats,
 * 'i...' = small non-negative ints, 'o...' = zeroed outputs), so a
 * serialized program alone is a complete reproducer.
 */
pir::Program generateProgram(Rng &rng);

} // namespace plast::fuzz

#endif // PLAST_FUZZ_GENERATOR_HPP
