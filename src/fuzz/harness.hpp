/**
 * @file
 * The fuzzing harness: drives seeded generate -> diff -> shrink
 * cycles, persists failing cases as standalone .pir seed files (the
 * sampled architecture travels in the file header, inputs are
 * reconstructed by the fill-by-name convention), and replays seed
 * files deterministically — the corpus under tests/corpus runs as
 * ordinary ctest cases through replayFile.
 */

#ifndef PLAST_FUZZ_HARNESS_HPP
#define PLAST_FUZZ_HARNESS_HPP

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "fuzz/diff.hpp"
#include "fuzz/generator.hpp"

namespace plast::fuzz
{

/** One reproducible fuzz case: program + architecture + fault mode. */
struct FuzzCase
{
    pir::Program prog;
    ArchParams params;
    /** Hardware-fault injection mode (the seed file's `inject` line):
     *  0 = clean, 1 = canned reduction-stage opcode flip, 2 = seeded
     *  scratchpad/DRAM upsets from the resilience fault library (ECC
     *  off, so they surface as output corruption), 3 = seeded datapath
     *  upsets (PCU pipeline registers + scratch words). */
    uint32_t inject = 0;
    /** Oversize case (the seed file's `expect diagnosed` line): the
     *  design likely exceeds the fabric; the oracle is "tryCompile
     *  returns a clean structured diagnosis, or the compile (possibly
     *  after capacity spilling) passes validated execution" — never a
     *  crash. */
    bool expectDiagnosed = false;
};

/** Deterministically derive the case for one seed. */
FuzzCase caseForSeed(uint64_t caseSeed, uint32_t inject = 0);

/** Derive an oversize case: a normal program paired with a
 *  deliberately undersized fabric (sampleTightArch). */
FuzzCase oversizeCaseForSeed(uint64_t caseSeed);

/** Run the oversize oracle on one case (see
 *  FuzzCase::expectDiagnosed). kOk = cleanly diagnosed or compiled +
 *  validated; kMismatch = diagnosis missing its structure or a spilled
 *  compile that computes wrong results. */
DiffResult runOversizeCase(const FuzzCase &c);

/**
 * The canned hardware fault: flip the combiner opcode of the first
 * reduction-tree stage of the first PCU that has one (kFAdd->kFMin,
 * kFMin<->kFMax, ...). A no-op on programs without cross-lane folds.
 */
std::function<void(FabricConfig &)> reduceStageFault();

/** Run one case differentially (applies the fault when requested). */
DiffResult runCase(const FuzzCase &c, bool checkDense = true);

// ---- seed files -----------------------------------------------------

void writeSeedFile(std::ostream &os, const FuzzCase &c);
bool readSeedFile(std::istream &is, FuzzCase &out,
                  std::string *err = nullptr);

/** Replay a .pir seed file from disk; kInvalid with detail on IO or
 *  parse errors. */
DiffResult replayFile(const std::string &path, bool checkDense = true);

// ---- the fuzz loop --------------------------------------------------

struct FuzzOptions
{
    uint64_t seed = 1;
    uint32_t runs = 100;
    /** Stop after this many wall-clock seconds (0 = unlimited). */
    uint32_t timeBudgetSec = 0;
    uint32_t inject = 0; ///< FuzzCase::inject mode for every case
    /** Generate oversize cases (tight fabrics) and run the
     *  diagnosed-or-correct oracle instead of the differential one. */
    bool oversize = false;
    bool checkDense = true;
    bool shrink = true;
    /** Write shrunk reproducers here ("" = don't persist). */
    std::string saveDir;
    /** Per-case progress on stderr. */
    bool progress = false;
};

struct FuzzStats
{
    uint32_t executed = 0;
    uint32_t okRuns = 0;
    uint32_t unmappable = 0;
    uint32_t mismatches = 0;
    std::vector<std::string> savedFiles;
    std::vector<std::string> details; ///< one per mismatch
};

FuzzStats fuzz(const FuzzOptions &opts);

} // namespace plast::fuzz

#endif // PLAST_FUZZ_HARNESS_HPP
