/**
 * @file
 * Automatic reduction of failing PIR programs to minimal reproducers.
 *
 * Greedy fixpoint over structural shrink passes: drop whole controller
 * subtrees (with NodeId compaction), flatten single-trip wrapper
 * controllers, halve counter trip counts, and simplify sink expression
 * DAGs. Every candidate must (a) pass pir::validateProgram and (b)
 * still fail the caller's property before it is accepted, so the
 * result is always a valid program exhibiting the original failure.
 */

#ifndef PLAST_FUZZ_SHRINK_HPP
#define PLAST_FUZZ_SHRINK_HPP

#include <functional>

#include "pir/ir.hpp"

namespace plast::fuzz
{

/** Returns true when the candidate still exhibits the failure. */
using FailProperty = std::function<bool(const pir::Program &)>;

struct ShrinkResult
{
    pir::Program prog;
    int accepted = 0; ///< number of shrink steps that stuck
};

/**
 * Shrink `failing` while `stillFails` holds. `maxSteps` bounds the
 * number of accepted shrinks (each accepted step restarts the pass
 * list, so the bound also caps property evaluations at roughly
 * maxSteps * candidates-per-round).
 */
ShrinkResult shrinkProgram(const pir::Program &failing,
                           const FailProperty &stillFails,
                           int maxSteps = 200);

} // namespace plast::fuzz

#endif // PLAST_FUZZ_SHRINK_HPP
