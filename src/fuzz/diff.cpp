#include "fuzz/diff.hpp"

#include <memory>
#include <vector>

#include "base/logging.hpp"
#include "base/rng.hpp"
#include "compiler/mapper.hpp"
#include "pir/eval.hpp"
#include "pir/validate.hpp"
#include "resilience/fault.hpp"
#include "runtime/runner.hpp"
#include "sim/fabric.hpp"

namespace plast::fuzz
{

using namespace pir;

void
fillInputs(Runner &r, const Program &prog)
{
    for (size_t m = 0; m < prog.mems.size(); ++m) {
        const MemDecl &md = prog.mems[m];
        if (md.kind != MemKind::kDram)
            continue;
        auto &buf = r.dram(static_cast<MemId>(m));
        // Seed from the MemId so renaming-preserving shrinks keep the
        // same data but distinct buffers get distinct streams.
        Rng rng(0x5eed0000u + static_cast<uint64_t>(m) * 0x9e37u);
        char c = md.name.empty() ? 'o' : md.name[0];
        for (auto &w : buf) {
            if (c == 'f')
                w = floatToWord(rng.nextFloat(-2.0f, 2.0f));
            else if (c == 'i')
                w = intToWord(
                    static_cast<int32_t>(rng.nextBounded(1 << 15)));
            else
                w = 0;
        }
    }
}

namespace
{

/** First difference between two word sequences, or empty string. */
std::string
firstDiff(const char *what, const std::vector<Word> &want,
          const std::vector<Word> &got)
{
    if (want.size() != got.size())
        return strfmt("%s: size %zu vs %zu", what, want.size(),
                      got.size());
    for (size_t i = 0; i < want.size(); ++i) {
        if (want[i] != got[i])
            return strfmt("%s[%zu]: 0x%08x (%f) vs 0x%08x (%f)", what,
                          i, want[i], wordToFloat(want[i]), got[i],
                          wordToFloat(got[i]));
    }
    return {};
}

std::vector<Word>
argOutWords(const Runner::Result &res, uint32_t slot)
{
    const auto &dq = res.argOuts[slot];
    return std::vector<Word>(dq.begin(), dq.end());
}

/** Per-unit cycle accounting: every evaluated cycle classified, every
 *  slept cycle attributed, and nothing exceeds the fabric clock. */
std::string
checkLedger(const Fabric &fab)
{
    const Cycles total = fab.now();
    const FabricConfig &cfg = fab.config();
    auto check = [&](const std::string &label,
                     const CycleAcct &a) -> std::string {
        uint64_t by_sum = 0, slept_sum = 0;
        for (size_t c = 0; c < kNumCycleClasses; ++c) {
            by_sum += a.by[c];
            slept_sum += a.sleptBy[c];
        }
        if (by_sum != a.stepped)
            return strfmt("%s: classified %llu != stepped %llu",
                          label.c_str(),
                          static_cast<unsigned long long>(by_sum),
                          static_cast<unsigned long long>(a.stepped));
        if (slept_sum != a.slept)
            return strfmt("%s: attributed-sleep %llu != slept %llu",
                          label.c_str(),
                          static_cast<unsigned long long>(slept_sum),
                          static_cast<unsigned long long>(a.slept));
        if (a.stepped + a.slept > total)
            return strfmt(
                "%s: stepped %llu + slept %llu exceeds clock %llu",
                label.c_str(),
                static_cast<unsigned long long>(a.stepped),
                static_cast<unsigned long long>(a.slept),
                static_cast<unsigned long long>(total));
        return {};
    };
    for (size_t i = 0; i < cfg.pcus.size(); ++i)
        if (const auto *u = fab.pcuPtr(static_cast<uint32_t>(i)))
            if (auto e = check(strfmt("pcu%zu ledger", i), u->acct());
                !e.empty())
                return e;
    for (size_t i = 0; i < cfg.pmus.size(); ++i)
        if (const auto *u = fab.pmuPtr(static_cast<uint32_t>(i)))
            if (auto e = check(strfmt("pmu%zu ledger", i), u->acct());
                !e.empty())
                return e;
    for (size_t i = 0; i < cfg.ags.size(); ++i)
        if (const auto *u = fab.agPtr(static_cast<uint32_t>(i)))
            if (auto e = check(strfmt("ag%zu ledger", i), u->acct());
                !e.empty())
                return e;
    for (size_t i = 0; i < cfg.boxes.size(); ++i)
        if (const auto *u = fab.boxPtr(static_cast<uint32_t>(i)))
            if (auto e = check(strfmt("box%zu ledger", i), u->acct());
                !e.empty())
                return e;
    return {};
}

} // namespace

DiffResult
diffRun(const Program &prog, const ArchParams &params,
        const DiffOptions &opts)
{
    DiffResult out;

    auto errs = validateProgram(prog, params.pcu.lanes);
    if (!errs.empty()) {
        out.status = DiffResult::Status::kInvalid;
        out.detail = errs.front();
        return out;
    }

    // Pre-flight the mapping: capacity overruns are a legal outcome of
    // random (program, arch) pairs, not a finding. Runner would fatal.
    compiler::MapResult probe = compiler::compileProgram(prog, params);
    if (!probe.report.ok) {
        out.status = DiffResult::Status::kUnmappable;
        out.detail = probe.report.error;
        return out;
    }

    // Fault-library injection: one plan, targeted at the mapped config;
    // every scheduler mode gets a fresh injector over the same plan so
    // the upsets land on identical cycles in both modes.
    resilience::FaultPlan plan;
    if (opts.injectMode >= 2) {
        // Fuzz programs finish in a few hundred cycles, so the plan
        // horizon is tight and the rate high — otherwise most upsets
        // would land after completion and every case would be a no-op.
        plan = resilience::FaultPlan::random(
            0x5eedfa17ull + opts.injectMode,
            /*eventsPerMillion=*/20000.0,
            /*horizon=*/300, probe.fabric,
            opts.injectMode == 2 ? resilience::FaultMix::kProtected
                                 : resilience::FaultMix::kDatapath,
            /*includeHard=*/false);
    }
    std::vector<std::unique_ptr<resilience::FaultInjector>> injectors;

    auto runMode = [&](SimOptions::Mode mode,
                       SimMode simMode = SimMode::kInterp) {
        SimOptions so;
        so.mode = mode;
        so.simMode = simMode;
        auto r = std::make_unique<Runner>(prog, params, so);
        if (opts.tweak)
            r->setConfigTweak(opts.tweak);
        if (opts.injectMode >= 2) {
            injectors.push_back(
                std::make_unique<resilience::FaultInjector>(
                    plan, params.dram.ecc));
            r->setFaultInjector(injectors.back().get());
        }
        fillInputs(*r, prog);
        return r;
    };

    auto activity = runMode(SimOptions::Mode::kActivity);
    Evaluator ref = activity->runReference();
    Runner::Result ares = activity->run(opts.maxCycles);
    out.cycles = ares.cycles;

    // 1. Reference vs fabric: argOut streams and DRAM images.
    for (uint32_t s = 0; s < prog.numArgOuts; ++s) {
        auto d = firstDiff(strfmt("argOut[%u]", s).c_str(),
                           ref.argOuts(static_cast<int32_t>(s)),
                           argOutWords(ares, s));
        if (!d.empty()) {
            out.status = DiffResult::Status::kMismatch;
            out.detail = "ref vs fabric " + d;
            return out;
        }
    }
    for (size_t m = 0; m < prog.mems.size(); ++m) {
        if (prog.mems[m].kind != MemKind::kDram)
            continue;
        MemId mid = static_cast<MemId>(m);
        auto d = firstDiff(
            strfmt("dram '%s'", prog.mems[m].name.c_str()).c_str(),
            ref.dramBuf(mid), activity->readDram(mid));
        if (!d.empty()) {
            out.status = DiffResult::Status::kMismatch;
            out.detail = "ref vs fabric " + d;
            return out;
        }
    }

    // 2. Cycle-ledger invariant on the activity-mode fabric.
    if (auto e = checkLedger(*activity->fabric()); !e.empty()) {
        out.status = DiffResult::Status::kMismatch;
        out.detail = e;
        return out;
    }

    // 3. Scheduler-mode parity: dense must be bit- and cycle-exact.
    if (opts.checkDense) {
        auto dense = runMode(SimOptions::Mode::kDense);
        Runner::Result dres = dense->run(opts.maxCycles);
        if (dres.cycles != ares.cycles) {
            out.status = DiffResult::Status::kMismatch;
            out.detail = strfmt(
                "scheduler parity: dense %llu cycles vs activity %llu",
                static_cast<unsigned long long>(dres.cycles),
                static_cast<unsigned long long>(ares.cycles));
            return out;
        }
        for (uint32_t s = 0; s < prog.numArgOuts; ++s) {
            auto d = firstDiff(strfmt("argOut[%u]", s).c_str(),
                               argOutWords(ares, s),
                               argOutWords(dres, s));
            if (!d.empty()) {
                out.status = DiffResult::Status::kMismatch;
                out.detail = "activity vs dense " + d;
                return out;
            }
        }
        for (size_t m = 0; m < prog.mems.size(); ++m) {
            if (prog.mems[m].kind != MemKind::kDram)
                continue;
            MemId mid = static_cast<MemId>(m);
            auto d = firstDiff(
                strfmt("dram '%s'", prog.mems[m].name.c_str()).c_str(),
                activity->readDram(mid), dense->readDram(mid));
            if (!d.empty()) {
                out.status = DiffResult::Status::kMismatch;
                out.detail = "activity vs dense " + d;
                return out;
            }
        }
        if (auto e = checkLedger(*dense->fabric()); !e.empty()) {
            out.status = DiffResult::Status::kMismatch;
            out.detail = "dense " + e;
            return out;
        }
    }

    // 4. Datapath parity: the specialized execution plans must be bit-
    //    and cycle-exact against the interpreter.
    if (opts.checkSpecialized) {
        auto spec =
            runMode(SimOptions::Mode::kActivity, SimMode::kSpecialized);
        Runner::Result sres = spec->run(opts.maxCycles);
        if (sres.cycles != ares.cycles) {
            out.status = DiffResult::Status::kMismatch;
            out.detail = strfmt(
                "datapath parity: specialized %llu cycles vs interp %llu",
                static_cast<unsigned long long>(sres.cycles),
                static_cast<unsigned long long>(ares.cycles));
            return out;
        }
        for (uint32_t s = 0; s < prog.numArgOuts; ++s) {
            auto d = firstDiff(strfmt("argOut[%u]", s).c_str(),
                               argOutWords(ares, s),
                               argOutWords(sres, s));
            if (!d.empty()) {
                out.status = DiffResult::Status::kMismatch;
                out.detail = "interp vs specialized " + d;
                return out;
            }
        }
        for (size_t m = 0; m < prog.mems.size(); ++m) {
            if (prog.mems[m].kind != MemKind::kDram)
                continue;
            MemId mid = static_cast<MemId>(m);
            auto d = firstDiff(
                strfmt("dram '%s'", prog.mems[m].name.c_str()).c_str(),
                activity->readDram(mid), spec->readDram(mid));
            if (!d.empty()) {
                out.status = DiffResult::Status::kMismatch;
                out.detail = "interp vs specialized " + d;
                return out;
            }
        }
        if (auto e = checkLedger(*spec->fabric()); !e.empty()) {
            out.status = DiffResult::Status::kMismatch;
            out.detail = "specialized " + e;
            return out;
        }
    }
    return out;
}

} // namespace plast::fuzz
