#include "fuzz/shrink.hpp"

#include <algorithm>
#include <optional>
#include <vector>

#include "pir/validate.hpp"

namespace plast::fuzz
{

using namespace pir;

namespace
{

/** All nodes of the subtree rooted at `id` (including `id`). */
void
collectSubtree(const Program &p, NodeId id, std::vector<bool> &in)
{
    in[static_cast<size_t>(id)] = true;
    for (NodeId c : p.nodes[static_cast<size_t>(id)].children)
        collectSubtree(p, c, in);
}

/**
 * Remove the subtree at `target`, compacting NodeIds. Returns nullopt
 * when a surviving structure still references a removed node (dangling
 * ctrDyn bound, scalar input or transfer count source) — those
 * candidates cannot be made valid by renumbering alone. A clearAt
 * pointing into the removed subtree degrades to kNone; the property
 * re-check decides whether the semantics change mattered.
 */
std::optional<Program>
removeSubtree(const Program &p, NodeId target)
{
    if (target == p.root)
        return std::nullopt;
    std::vector<bool> removed(p.nodes.size(), false);
    collectSubtree(p, target, removed);

    std::vector<NodeId> remap(p.nodes.size(), kNone);
    NodeId next = 0;
    for (size_t i = 0; i < p.nodes.size(); ++i)
        if (!removed[i])
            remap[i] = next++;

    auto mapRequired = [&](NodeId id) -> std::optional<NodeId> {
        if (id < 0)
            return id; // kNone and sentinels pass through
        if (removed[static_cast<size_t>(id)])
            return std::nullopt;
        return remap[static_cast<size_t>(id)];
    };

    Program out = p;
    out.nodes.clear();
    for (size_t i = 0; i < p.nodes.size(); ++i) {
        if (removed[i])
            continue;
        Node n = p.nodes[i];
        if (auto m = mapRequired(n.parent))
            n.parent = *m;
        else
            return std::nullopt;
        std::vector<NodeId> kids;
        for (NodeId c : n.children) {
            if (!removed[static_cast<size_t>(c)])
                kids.push_back(remap[static_cast<size_t>(c)]);
        }
        n.children = std::move(kids);
        for (ScalarIn &si : n.scalarIns) {
            if (auto m = mapRequired(si.fromNode))
                si.fromNode = *m;
            else
                return std::nullopt;
        }
        if (auto m = mapRequired(n.xfer.countSinkNode))
            n.xfer.countSinkNode = *m;
        else
            return std::nullopt;
        out.nodes.push_back(std::move(n));
    }
    for (CtrDecl &c : out.ctrs) {
        if (c.boundSinkNode == kNone)
            continue;
        if (auto m = mapRequired(c.boundSinkNode)) {
            c.boundSinkNode = *m;
        } else {
            // The counter's bound producer is gone. If the counter is
            // also unreferenced now, neutralize it to a static bound;
            // validation rejects the candidate if anything uses it.
            c.boundSinkNode = kNone;
            c.boundSinkIdx = kNone;
            c.max = c.min;
        }
    }
    for (MemDecl &m : out.mems) {
        if (m.clearAt >= 0) {
            if (auto r = mapRequired(m.clearAt))
                m.clearAt = *r;
            else
                m.clearAt = kNone;
        }
    }
    out.root = remap[static_cast<size_t>(p.root)];
    return out;
}

/** Static trip count of a counter, or -1 when the bound is dynamic. */
int64_t
staticTrips(const CtrDecl &c)
{
    if (c.boundArg != kNone || c.boundSinkNode != kNone)
        return -1;
    if (c.step <= 0)
        return -1;
    int64_t span = c.max - c.min;
    return span <= 0 ? 0 : (span + c.step - 1) / c.step;
}

/**
 * Flatten a single-trip outer controller: splice its children into
 * the parent's child list at its position. Bails when the wrapper is
 * referenced elsewhere.
 */
std::optional<Program>
flattenOuter(const Program &p, NodeId target)
{
    const Node &n = p.nodes[static_cast<size_t>(target)];
    if (n.kind != NodeKind::kOuter || target == p.root ||
        n.children.empty())
        return std::nullopt;
    for (CtrId c : n.ctrs)
        if (staticTrips(p.ctrs[static_cast<size_t>(c)]) != 1)
            return std::nullopt;
    for (const MemDecl &m : p.mems)
        if (m.clearAt == target)
            return std::nullopt;
    for (const CtrDecl &c : p.ctrs)
        if (c.boundSinkNode == target)
            return std::nullopt;

    Program out = p;
    Node &parent = out.nodes[static_cast<size_t>(n.parent)];
    auto it = std::find(parent.children.begin(), parent.children.end(),
                        target);
    if (it == parent.children.end())
        return std::nullopt;
    size_t pos = static_cast<size_t>(it - parent.children.begin());
    parent.children.erase(it);
    parent.children.insert(parent.children.begin() +
                               static_cast<int64_t>(pos),
                           n.children.begin(), n.children.end());
    for (NodeId c : n.children)
        out.nodes[static_cast<size_t>(c)].parent = n.parent;
    // Detach the wrapper (now childless and unreachable), then compact
    // ids by removing it as a one-node subtree.
    out.nodes[static_cast<size_t>(target)].children.clear();
    return removeSubtree(out, target);
}

/**
 * Halve a counter's trip count. Vectorized counters stay a multiple
 * of one wavefront (16 lanes) so stream transfers and reduction trees
 * keep full lanes.
 */
std::optional<Program>
halveTrips(const Program &p, size_t ctrIdx)
{
    const CtrDecl &c = p.ctrs[ctrIdx];
    int64_t trips = staticTrips(c);
    if (trips <= 1)
        return std::nullopt;
    int64_t unit = c.vectorized ? 16 : 1;
    int64_t units = (trips + unit - 1) / unit;
    if (units <= 1)
        return std::nullopt;
    int64_t newTrips = (units / 2) * unit;
    if (newTrips <= 0 || newTrips >= trips)
        return std::nullopt;
    Program out = p;
    out.ctrs[ctrIdx].max = c.min + newTrips * c.step;
    return out;
}

/** Replace a sink's value expression by one of its ALU operands. */
std::optional<Program>
hoistSinkOperand(const Program &p, NodeId node, size_t sinkIdx,
                 int which)
{
    const Sink &sk = p.nodes[static_cast<size_t>(node)].sinks[sinkIdx];
    if (sk.value == kNone)
        return std::nullopt;
    const Expr &e = p.exprs[static_cast<size_t>(sk.value)];
    if (e.kind != ExprKind::kAlu)
        return std::nullopt;
    ExprId child = which == 0 ? e.a : (which == 1 ? e.b : e.c);
    if (child == kNone)
        return std::nullopt;
    Program out = p;
    out.nodes[static_cast<size_t>(node)].sinks[sinkIdx].value = child;
    return out;
}

/** Accept a candidate only when it is valid and still failing. */
bool
accept(const std::optional<Program> &cand, const FailProperty &fails,
       Program &cur)
{
    if (!cand)
        return false;
    if (!validateProgram(*cand).empty())
        return false;
    if (!fails(*cand))
        return false;
    cur = *cand;
    return true;
}

} // namespace

ShrinkResult
shrinkProgram(const Program &failing, const FailProperty &stillFails,
              int maxSteps)
{
    ShrinkResult res;
    res.prog = failing;
    Program &cur = res.prog;

    bool improved = true;
    while (improved && res.accepted < maxSteps) {
        improved = false;

        // 1. Drop subtrees, biggest first (whole kernels, then leaves).
        {
            std::vector<std::pair<size_t, NodeId>> order;
            for (NodeId id = 0;
                 id < static_cast<NodeId>(cur.nodes.size()); ++id) {
                if (id == cur.root)
                    continue;
                std::vector<bool> in(cur.nodes.size(), false);
                collectSubtree(cur, id, in);
                order.emplace_back(
                    static_cast<size_t>(
                        std::count(in.begin(), in.end(), true)),
                    id);
            }
            std::sort(order.begin(), order.end(),
                      [](const auto &a, const auto &b) {
                          return a.first > b.first;
                      });
            for (const auto &[sz, id] : order) {
                if (accept(removeSubtree(cur, id), stillFails, cur)) {
                    ++res.accepted;
                    improved = true;
                    break;
                }
            }
            if (improved)
                continue;
        }

        // 2. Flatten single-trip wrappers.
        for (NodeId id = 0; id < static_cast<NodeId>(cur.nodes.size());
             ++id) {
            if (accept(flattenOuter(cur, id), stillFails, cur)) {
                ++res.accepted;
                improved = true;
                break;
            }
        }
        if (improved)
            continue;

        // 3. Halve trip counts.
        for (size_t c = 0; c < cur.ctrs.size(); ++c) {
            if (accept(halveTrips(cur, c), stillFails, cur)) {
                ++res.accepted;
                improved = true;
                break;
            }
        }
        if (improved)
            continue;

        // 4. Simplify sink expressions.
        for (NodeId id = 0; id < static_cast<NodeId>(cur.nodes.size());
             ++id) {
            const Node &n = cur.nodes[static_cast<size_t>(id)];
            for (size_t s = 0; s < n.sinks.size() && !improved; ++s)
                for (int which = 0; which < 3 && !improved; ++which)
                    if (accept(hoistSinkOperand(cur, id, s, which),
                               stillFails, cur)) {
                        ++res.accepted;
                        improved = true;
                    }
            if (improved)
                break;
        }
    }
    return res;
}

} // namespace plast::fuzz
