#include "fuzz/generator.hpp"

#include <cstdint>
#include <vector>

#include "base/logging.hpp"
#include "pir/builder.hpp"

namespace plast::fuzz
{

using namespace pir;

namespace
{

/** Pick one element of a fixed option list. */
template <typename T, size_t N>
T
pick(Rng &rng, const T (&opts)[N])
{
    return opts[rng.nextBounded(N)];
}

/** Binary combiner ops that keep int values small and well-defined
 *  (no multiplies: wraparound int multiply is signed-overflow UB). */
FuOp
intBinOp(Rng &rng)
{
    static const FuOp ops[] = {FuOp::kIAdd, FuOp::kISub, FuOp::kIMin,
                               FuOp::kIMax, FuOp::kAnd,  FuOp::kOr,
                               FuOp::kXor};
    return pick(rng, ops);
}

FuOp
floatBinOp(Rng &rng)
{
    static const FuOp ops[] = {FuOp::kFAdd, FuOp::kFSub, FuOp::kFMul,
                               FuOp::kFMin, FuOp::kFMax};
    return pick(rng, ops);
}

FuOp
foldOp(Rng &rng, bool isFloat)
{
    if (isFloat) {
        static const FuOp ops[] = {FuOp::kFAdd, FuOp::kFMin,
                                   FuOp::kFMax};
        return pick(rng, ops);
    }
    static const FuOp ops[] = {FuOp::kIAdd, FuOp::kIMin, FuOp::kIMax};
    return pick(rng, ops);
}

ExprId
randImm(Builder &b, Rng &rng, bool isFloat)
{
    if (isFloat)
        return b.immF(rng.nextFloat(-2.0f, 2.0f));
    return b.immI(static_cast<int32_t>(rng.nextBounded(1 << 15)));
}

/**
 * Wrap one kernel in its own outer controller under `root`. The
 * single-trip counter keeps the wrapper a real controller (boxes with
 * counter chains are the proven idiom) while leaving the semantics of
 * its children untouched, and gives the shrinker a one-node handle on
 * the whole kernel.
 */
NodeId
wrapKernel(Builder &b, NodeId root, int k, CtrlScheme scheme)
{
    CtrId w = b.ctr(strfmt("w%d", k), 0, 1);
    return b.outer(strfmt("kernel%d", k), scheme, {w}, root);
}

// ---- T1: streamed fold ---------------------------------------------
// DRAM streams feed an expression DAG whose result folds to an argOut,
// optionally through a Mux filter (TPCH-Q6 shape) and optionally split
// into `par` partial folds combined by a one-trip leaf.
void
genStreamFold(Builder &b, NodeId root, Rng &rng, int k)
{
    const bool isFloat = rng.nextBounded(2) == 0;
    const uint32_t nStreams = 1 + static_cast<uint32_t>(rng.nextBounded(2));
    const uint32_t par = 1 + static_cast<uint32_t>(rng.nextBounded(2));
    const int64_t n =
        static_cast<int64_t>(par) * 16 * (1 + static_cast<int64_t>(rng.nextBounded(8)));
    const FuOp fop = foldOp(rng, isFloat);
    const bool filter = rng.nextBounded(3) == 0;

    NodeId wrap = wrapKernel(b, root, k, CtrlScheme::kSequential);
    int32_t out = b.argOut();

    std::vector<MemId> ins;
    for (uint32_t s = 0; s < nStreams; ++s)
        ins.push_back(b.dram(strfmt("%cin%d_%u", isFloat ? 'f' : 'i', k, s),
                             static_cast<uint64_t>(n)));

    // The per-leaf dataflow is identical across partial folds; only the
    // counter range differs (outer-loop unrolling, §3.6).
    const FuOp combine2 = nStreams == 2 ? (isFloat ? floatBinOp(rng)
                                                   : intBinOp(rng))
                                        : FuOp::kNop;
    const bool extraOp = rng.nextBounded(2) == 0;
    const FuOp extra = isFloat ? floatBinOp(rng) : intBinOp(rng);
    const ExprId extraImm = randImm(b, rng, isFloat);
    const FuOp cmp = isFloat ? FuOp::kFGe : FuOp::kIGe;
    const ExprId cmpImm = isFloat
                              ? b.immF(rng.nextFloat(-1.0f, 1.0f))
                              : b.immI(static_cast<int32_t>(
                                    rng.nextBounded(1 << 14)));

    std::vector<ScalarIn> parts;
    const int64_t chunk = n / par;
    for (uint32_t p = 0; p < par; ++p) {
        CtrId i = b.ctr(strfmt("i%d_%u", k, p),
                        static_cast<int64_t>(p) * chunk,
                        static_cast<int64_t>(p + 1) * chunk, 1,
                        /*vectorized=*/true);
        ExprId ie = b.ctrE(i);
        ExprId val = b.streamRef(0);
        if (nStreams == 2)
            val = b.alu(combine2, val, b.streamRef(1));
        if (extraOp)
            val = b.alu(extra, val, extraImm);
        if (filter) {
            // Rows failing the predicate contribute the fold identity.
            ExprId cond = b.alu(cmp, b.streamRef(0), cmpImm);
            val = b.alu(FuOp::kMux, cond, val, b.imm(fuOpIdentity(fop)));
        }
        std::vector<StreamIn> sis;
        for (MemId m : ins)
            sis.push_back(StreamIn{m, ie});
        if (par == 1) {
            b.compute(strfmt("sf%d", k), wrap, {i}, sis, {},
                      {Builder::fold(fop, val, i, out)});
        } else {
            NodeId leaf =
                b.compute(strfmt("sf%d_%u", k, p), wrap, {i}, sis, {},
                          {Builder::foldToScalar(fop, val, i)});
            parts.push_back({leaf, 0});
        }
    }
    if (par > 1) {
        CtrId one = b.ctr(strfmt("c%d.one", k), 0, 1, 1, true);
        ExprId sum = b.scalarRef(0);
        for (size_t i = 1; i < parts.size(); ++i)
            sum = b.alu(fop, sum, b.scalarRef(static_cast<int32_t>(i)));
        b.compute(strfmt("combine%d", k), wrap, {one}, {}, parts,
                  {Builder::fold(fop, sum, one, out)});
    }
}

// ---- T2: tiled map --------------------------------------------------
// loadTile -> elementwise compute through an SRAM -> storeTile, under a
// sequential or metapipelined tile loop (SMDV/GEMM shape). Exercises
// the dense AG path, double buffering and vector-linear PMU access.
void
genTileMap(Builder &b, NodeId root, Rng &rng, int k)
{
    const bool isFloat = rng.nextBounded(2) == 0;
    const int64_t rt = 16 * (2 + static_cast<int64_t>(rng.nextBounded(3)));
    const int64_t nT = 1 + static_cast<int64_t>(rng.nextBounded(3));
    const int64_t n = rt * nT;
    const CtrlScheme scheme = rng.nextBounded(2) == 0
                                  ? CtrlScheme::kSequential
                                  : CtrlScheme::kMetapipe;
    const uint32_t nbuf = 1 + static_cast<uint32_t>(rng.nextBounded(2));

    MemId vin = b.dram(strfmt("%cin%d", isFloat ? 'f' : 'i', k),
                       static_cast<uint64_t>(n));
    MemId vout = b.dram(strfmt("out%d", k), static_cast<uint64_t>(n));
    MemId sin = b.sram(strfmt("tin%d", k), static_cast<uint64_t>(rt),
                       BankingMode::kStrided, nbuf);
    MemId sout = b.sram(strfmt("tout%d", k), static_cast<uint64_t>(rt),
                        BankingMode::kStrided, nbuf);

    NodeId wrap = wrapKernel(b, root, k, CtrlScheme::kSequential);
    CtrId t = b.ctr(strfmt("t%d", k), 0, nT);
    NodeId tiles = b.outer(strfmt("tiles%d", k), scheme, {t}, wrap);

    ExprId base =
        b.imul(b.ctrE(t), b.immI(static_cast<int32_t>(rt)));
    b.loadTile(strfmt("load%d", k), tiles, vin, sin, base, 1, rt, 0);

    CtrId j = b.ctr(strfmt("j%d", k), 0, rt, 1, /*vectorized=*/true);
    ExprId x = b.load(sin, b.ctrE(j));
    ExprId val = rng.nextBounded(2) == 0
                     ? b.alu(isFloat ? floatBinOp(rng) : intBinOp(rng),
                             x, randImm(b, rng, isFloat))
                     : b.alu(isFloat ? floatBinOp(rng) : intBinOp(rng),
                             x, x);
    b.compute(strfmt("map%d", k), tiles, {j}, {}, {},
              {Builder::storeSram(sout, b.ctrE(j), val)});

    b.storeTile(strfmt("store%d", k), tiles, vout, sout, base, 1, rt, 0);
}

// ---- T4: SRAM producer/consumer chain ------------------------------
// A compute leaf fills a scratchpad from counter-derived values, then a
// sibling consumes it back through one of the three PMU read classes:
// vector-linear, duplicated-bank gather (BFS shape) or broadcast (GEMM
// shape), folding the result to an argOut. Integer data throughout so
// the gather's address arithmetic stays exact.
void
genSramChain(Builder &b, NodeId root, Rng &rng, int k)
{
    const int64_t m = 16 * (2 + static_cast<int64_t>(rng.nextBounded(7)));
    const int variant = static_cast<int>(rng.nextBounded(3));
    const FuOp fop = foldOp(rng, false);

    MemId s = b.sram(strfmt("is%d", k), static_cast<uint64_t>(m),
                     variant == 1 ? BankingMode::kDup
                                  : BankingMode::kStrided);
    NodeId wrap = wrapKernel(b, root, k, CtrlScheme::kSequential);
    int32_t out = b.argOut();

    // Producer: s[i] = f(i), vector-linear write.
    CtrId i = b.ctr(strfmt("p%d", k), 0, m, 1, /*vectorized=*/true);
    ExprId pv = b.alu(intBinOp(rng), b.ctrE(i),
                      b.immI(static_cast<int32_t>(rng.nextBounded(256))));
    b.compute(strfmt("fill%d", k), wrap, {i}, {}, {},
              {Builder::storeSram(s, b.ctrE(i), pv)});

    if (variant == 2) {
        // Broadcast consumer: the address depends only on the scalar
        // outer counter, so every lane reads the same word.
        const int64_t reps = 2 + static_cast<int64_t>(rng.nextBounded(3));
        CtrId kk = b.ctr(strfmt("k%d", k), 0, reps);
        CtrId j = b.ctr(strfmt("c%d", k), 0, 16, 1, true);
        ExprId x = b.load(s, b.ctrE(kk));
        ExprId val = b.iadd(x, b.ctrE(j));
        b.compute(strfmt("bcast%d", k), wrap, {kk, j}, {}, {},
                  {Builder::fold(fop, val, kk, out)});
        return;
    }

    CtrId j = b.ctr(strfmt("c%d", k), 0, m, 1, /*vectorized=*/true);
    ExprId addr = b.ctrE(j);
    if (variant == 1) {
        // Gather consumer: a permuted in-range address per lane
        // (odd multiplier modulo the power-of-two size).
        static const int32_t mul[] = {3, 5, 7, 9};
        addr = b.alu(FuOp::kAnd,
                     b.imul(addr, b.immI(pick(rng, mul))),
                     b.immI(static_cast<int32_t>(m - 1)));
    }
    ExprId x = b.load(s, addr);
    b.compute(strfmt("drain%d", k), wrap, {j}, {}, {},
              {Builder::fold(fop, x, j, out)});
}

// ---- T5: FlatMap pipeline ------------------------------------------
// A predicate over a streamed input appends survivors to a duplicated
// scratchpad (dynamic count); a consumer loop bounded by that count
// folds the survivors (BFS frontier shape). Checks the coalescing
// vector output, count plumbing and ctrDyn bounds.
void
genFlatMap(Builder &b, NodeId root, Rng &rng, int k)
{
    const int64_t n = 16 * (4 + static_cast<int64_t>(rng.nextBounded(5)));
    // Low threshold: the survivor set is empty with probability well
    // under 2^-100, so the consumer loop always has work.
    const int32_t thresh =
        1024 + static_cast<int32_t>(rng.nextBounded(4096));

    MemId vin = b.dram(strfmt("iin%d", k), static_cast<uint64_t>(n));
    MemId sf = b.sram(strfmt("if%d", k), static_cast<uint64_t>(n),
                      BankingMode::kDup);
    NodeId wrap = wrapKernel(b, root, k, CtrlScheme::kSequential);
    int32_t countOut = b.argOut();
    int32_t sumOut = b.argOut();

    CtrId nv = b.ctr(strfmt("n%d", k), 0, n, 1, /*vectorized=*/true);
    ExprId ne = b.ctrE(nv);
    ExprId keep = b.alu(FuOp::kIGe, b.streamRef(0), b.immI(thresh));
    NodeId prod =
        b.compute(strfmt("sel%d", k), wrap, {nv}, {StreamIn{vin, ne}},
                  {}, {Builder::flatMap(sf, ne, keep, countOut)});

    CtrId i1 = b.ctrDyn(strfmt("d%d", k), prod, 0, 0, 1,
                        /*vectorized=*/true);
    ExprId x = b.load(sf, b.ctrE(i1));
    b.compute(strfmt("red%d", k), wrap, {i1}, {}, {},
              {Builder::fold(FuOp::kIAdd, x, i1, sumOut)});
}

} // namespace

ArchParams
sampleArch(Rng &rng)
{
    ArchParams p = ArchParams::plasticineFinal();
    static const uint32_t cols[] = {12, 16};
    static const uint32_t rows[] = {6, 8};
    static const uint32_t stages[] = {6, 8};
    static const uint32_t fifo[] = {8, 16};
    static const uint32_t bankKb[] = {8, 16, 32};
    static const uint32_t chans[] = {2, 4};
    static const uint32_t qd[] = {16, 32};
    static const uint32_t vtr[] = {3, 4, 6};
    static const uint32_t str[] = {6, 8};
    static const uint32_t ags[] = {16, 34};
    p.gridCols = pick(rng, cols);
    p.gridRows = pick(rng, rows);
    p.pcu.stages = pick(rng, stages);
    p.pcu.fifoDepth = pick(rng, fifo);
    p.pmu.fifoDepth = p.pcu.fifoDepth;
    p.pmu.bankKilobytes = pick(rng, bankKb);
    p.dram.channels = pick(rng, chans);
    p.dram.queueDepth = pick(rng, qd);
    p.vectorTracks = pick(rng, vtr);
    p.scalarTracks = pick(rng, str);
    p.numAgs = pick(rng, ags);
    return p;
}

ArchParams
sampleTightArch(Rng &rng)
{
    ArchParams p = ArchParams::plasticineFinal();
    static const uint32_t cols[] = {2, 3, 4};
    static const uint32_t rows[] = {2, 3};
    static const uint32_t stages[] = {4, 6};
    static const uint32_t bankKb[] = {1, 2};
    static const uint32_t chans[] = {1, 2};
    static const uint32_t vtr[] = {1, 2};
    static const uint32_t str[] = {2, 4};
    static const uint32_t ags[] = {2, 4, 6};
    p.gridCols = pick(rng, cols);
    p.gridRows = pick(rng, rows);
    p.pcu.stages = pick(rng, stages);
    p.pcu.fifoDepth = 8;
    p.pmu.fifoDepth = 8;
    p.pmu.bankKilobytes = pick(rng, bankKb);
    p.dram.channels = pick(rng, chans);
    p.dram.queueDepth = 8;
    p.vectorTracks = pick(rng, vtr);
    p.scalarTracks = pick(rng, str);
    p.numAgs = pick(rng, ags);
    return p;
}

pir::Program
generateProgram(Rng &rng)
{
    Builder b("fuzz");
    NodeId root = b.outer("root", CtrlScheme::kSequential, {}, kNone);
    const int kernels = 1 + static_cast<int>(rng.nextBounded(3));
    for (int k = 0; k < kernels; ++k) {
        switch (rng.nextBounded(4)) {
          case 0:
            genStreamFold(b, root, rng, k);
            break;
          case 1:
            genTileMap(b, root, rng, k);
            break;
          case 2:
            genSramChain(b, root, rng, k);
            break;
          default:
            genFlatMap(b, root, rng, k);
            break;
        }
    }
    return b.finish(root);
}

} // namespace plast::fuzz
