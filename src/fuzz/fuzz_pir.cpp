/**
 * @file
 * Command-line differential fuzzer for the PIR -> fabric pipeline.
 *
 *   fuzz_pir --runs=500 --seed=1          # bounded batch
 *   fuzz_pir --time-budget=60             # CI smoke: run for 60 s
 *   fuzz_pir --replay tests/corpus/x.pir  # re-execute a reproducer
 *   fuzz_pir --inject --save-dir=out      # fault-injection self-test
 *
 * Exit status: 0 when every executed case matched (unmappable cases
 * are skipped, not failures), 1 on any mismatch, 2 on usage errors.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>

#include "base/logging.hpp"
#include "fuzz/harness.hpp"

using namespace plast;

namespace
{

void
usage()
{
    std::fprintf(
        stderr,
        "usage: fuzz_pir [options]\n"
        "  --seed=N          base seed for the run sequence (default 1)\n"
        "  --runs=N          number of cases to execute (default 100)\n"
        "  --time-budget=S   stop after S wall-clock seconds (0 = off)\n"
        "  --replay=FILE     replay one .pir reproducer and exit\n"
        "  --emit=SEED       print the seed's case as a .pir file and "
        "exit\n"
        "  --save-dir=DIR    write shrunk reproducers to DIR\n"
        "  --inject[=N]      inject hardware faults: 1 = canned\n"
        "                    reduction-stage opcode flip (default), 2 =\n"
        "                    scratch/DRAM upsets from the fault library\n"
        "                    (ECC off), 3 = datapath register upsets\n"
        "  --oversize        pair programs with deliberately undersized\n"
        "                    fabrics; assert every compile either yields\n"
        "                    a structured diagnosis or (after capacity\n"
        "                    spilling) validates bit-exactly\n"
        "  --no-dense        skip the dense-scheduler parity re-run\n"
        "  --no-shrink       keep failing programs unshrunk\n"
        "  --quiet           suppress per-case progress\n");
}

bool
parseU64(const char *s, uint64_t &out)
{
    char *end = nullptr;
    out = std::strtoull(s, &end, 0);
    return end && *end == '\0' && end != s;
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    fuzz::FuzzOptions opts;
    opts.progress = true;
    std::string replay;
    uint64_t emitSeed = 0;
    bool haveEmit = false;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto val = [&](const char *prefix) -> const char * {
            size_t n = std::strlen(prefix);
            return a.compare(0, n, prefix) == 0 ? a.c_str() + n
                                                : nullptr;
        };
        uint64_t u = 0;
        if (const char *v = val("--seed=")) {
            if (!parseU64(v, opts.seed)) {
                usage();
                return 2;
            }
        } else if (const char *v = val("--runs=")) {
            if (!parseU64(v, u)) {
                usage();
                return 2;
            }
            opts.runs = static_cast<uint32_t>(u);
        } else if (const char *v = val("--time-budget=")) {
            if (!parseU64(v, u)) {
                usage();
                return 2;
            }
            opts.timeBudgetSec = static_cast<uint32_t>(u);
            // A pure time budget should not stop early on run count.
            if (opts.timeBudgetSec > 0)
                opts.runs = UINT32_MAX;
        } else if (const char *v = val("--replay=")) {
            replay = v;
        } else if (a == "--replay" && i + 1 < argc) {
            replay = argv[++i];
        } else if (const char *v = val("--emit=")) {
            if (!parseU64(v, u)) {
                usage();
                return 2;
            }
            emitSeed = u;
            haveEmit = true;
        } else if (const char *v = val("--save-dir=")) {
            opts.saveDir = v;
        } else if (a == "--inject") {
            opts.inject = 1;
        } else if (const char *v = val("--inject=")) {
            if (!parseU64(v, u) || u > 3) {
                usage();
                return 2;
            }
            opts.inject = static_cast<uint32_t>(u);
        } else if (a == "--oversize") {
            opts.oversize = true;
        } else if (a == "--no-dense") {
            opts.checkDense = false;
        } else if (a == "--no-shrink") {
            opts.shrink = false;
        } else if (a == "--quiet") {
            opts.progress = false;
        } else if (a == "--help" || a == "-h") {
            usage();
            return 0;
        } else {
            std::fprintf(stderr, "fuzz_pir: unknown option '%s'\n",
                         a.c_str());
            usage();
            return 2;
        }
    }

    if (haveEmit) {
        // Corpus curation: dump a generated case to stdout so clean
        // seeds can be committed and replayed as regression tests.
        fuzz::FuzzCase c = opts.oversize
                               ? fuzz::oversizeCaseForSeed(emitSeed)
                               : fuzz::caseForSeed(emitSeed, opts.inject);
        std::ostringstream os;
        fuzz::writeSeedFile(os, c);
        std::fputs(os.str().c_str(), stdout);
        return 0;
    }

    if (!replay.empty()) {
        fuzz::DiffResult d = fuzz::replayFile(replay, opts.checkDense);
        if (d.ok()) {
            std::printf("PASS %s (%llu cycles)%s%s\n", replay.c_str(),
                        static_cast<unsigned long long>(d.cycles),
                        d.detail.empty() ? "" : " — ",
                        d.detail.c_str());
            return 0;
        }
        std::printf("FAIL %s: %s\n", replay.c_str(), d.detail.c_str());
        return 1;
    }

    fuzz::FuzzStats stats = fuzz::fuzz(opts);
    std::printf("fuzz_pir: %u executed, %u ok, %u unmappable, "
                "%u mismatches\n",
                stats.executed, stats.okRuns, stats.unmappable,
                stats.mismatches);
    for (const auto &f : stats.savedFiles)
        std::printf("  reproducer: %s\n", f.c_str());
    for (const auto &dtl : stats.details)
        std::printf("  mismatch: %s\n", dtl.c_str());
    return stats.mismatches == 0 ? 0 : 1;
}
