#include "fpga/fpga_model.hpp"

#include <algorithm>

#include "base/logging.hpp"

namespace plast::fpga
{

namespace
{

/**
 * Baseline FPGA design resource utilizations. These are the published
 * synthesis results of the paper's DHDL-generated Stratix V designs
 * (Table 7, Logic/Memory columns) and serve as calibration inputs —
 * they describe how much of the device each benchmark's design could
 * actually use before running out of logic, BRAM ports, or routing.
 */
struct DesignProfile
{
    const char *name;
    double logic; ///< fraction of ALMs
    double mem;   ///< fraction of BRAM
};

const DesignProfile kProfiles[] = {
    {"InnerProduct", 0.243, 0.335}, {"OuterProduct", 0.382, 0.714},
    {"BlackScholes", 0.689, 1.000}, {"TPCHQ6", 0.243, 0.334},
    {"GEMM", 0.404, 0.948},         {"GDA", 0.536, 0.968},
    {"LogReg", 0.284, 0.734},       {"SGD", 0.601, 0.582},
    {"Kmeans", 0.421, 0.654},       {"CNN", 0.868, 0.990},
    {"SMDV", 0.273, 0.310},         {"PageRank", 0.313, 0.334},
    {"BFS", 0.253, 0.459},
};

DesignProfile
profileOf(const std::string &name)
{
    for (const auto &p : kProfiles) {
        if (name == p.name)
            return p;
    }
    warn("no FPGA design profile for '%s'; using a generic one",
         name.c_str());
    return {"generic", 0.4, 0.5};
}

} // namespace

FpgaEstimate
estimateFpga(const apps::AppInstance &app, const FpgaDevice &dev)
{
    DesignProfile prof = profileOf(app.name);
    FpgaEstimate est;
    est.logicUtil = prof.logic;
    est.memUtil = prof.mem;

    // Achievable spatial FP throughput: DSP multipliers plus soft
    // adders, scaled by how much of the device the design occupies.
    double dsp_ops =
        dev.dsps * std::min(1.0, prof.logic * 2.2) * 0.5;
    double alm_ops = dev.alms * prof.logic * 0.25 / dev.almsPerFpAdd;
    double flops_per_sec = dev.fabricHz * (dsp_ops + alm_ops);

    // Memory time: dense streams run near peak on the ganged
    // controller; random accesses waste most of every 64 B line and
    // are issued by soft logic.
    double eff_bw = app.sparse
                        ? dev.peakBytesPerSec * dev.randomEfficiency * 4
                        : dev.peakBytesPerSec * 0.8;
    double mem_s = app.dramBytes * app.fpgaTrafficFactor / eff_bw;
    if (app.sparse) {
        double elements = app.dramBytes / 4.0;
        mem_s = std::max(mem_s, elements / (dev.sgIssuePerCycle *
                                            dev.fabricHz));
    }
    double compute_s = app.flops / flops_per_sec;

    // Genuinely serial controller chains run at the fabric clock:
    // each dependent step pays pipeline fill and control handoff.
    double serial_s = app.serialSteps * 250.0 / dev.fabricHz;

    est.seconds = std::max({compute_s, mem_s, serial_s});
    est.computeBound = compute_s > mem_s;
    // PowerPlay-style estimate: static + dynamic by utilization.
    est.watts = 19.0 + 12.0 * prof.logic + 4.0 * prof.mem;
    return est;
}

} // namespace plast::fpga
