/**
 * @file
 * Analytical model of the paper's baseline: an Altera Stratix V FPGA
 * with a 150 MHz fabric clock, a 400 MHz memory-controller clock, and
 * 48 GB of DDR3-800 across 6 ganged channels with 37.5 GB/s peak
 * (§4.4). Since the physical device is unavailable (see DESIGN.md),
 * per-benchmark runtime is bounded by first-order resource
 * constraints:
 *
 *  - compute: DSP-limited FP multiply throughput plus ALM-limited
 *    adders at the fabric clock; deep pipelines replicate until the
 *    DSP/ALM budget is exhausted,
 *  - memory: streaming traffic at the ganged peak bandwidth; random
 *    accesses pay the full 64 B line per useful word because the
 *    ganged controller cannot split requests across channels, with
 *    soft-logic gather/scatter adding a fixed issue cost per element,
 *  - BRAM: on-chip tile capacity caps exploitable locality.
 *
 * Power comes from a PowerPlay-style model: device static plus
 * utilization-dependent dynamic terms (the paper's per-benchmark FPGA
 * powers run 21.5-34.4 W).
 */

#ifndef PLAST_FPGA_FPGA_MODEL_HPP
#define PLAST_FPGA_FPGA_MODEL_HPP

#include "apps/apps.hpp"

namespace plast::fpga
{

struct FpgaDevice
{
    double fabricHz = 150e6;
    double peakBytesPerSec = 37.5e9;
    /** Useful fraction of a ganged 6-channel line per random word. */
    double randomEfficiency = 4.0 / 64.0;
    /** Soft-logic gather/scatter issue rate (elements per cycle). */
    double sgIssuePerCycle = 4.0;
    uint32_t dsps = 256;       ///< 27x27 DSP blocks
    uint32_t alms = 234000;    ///< adaptive logic modules
    double bramBytes = 6.25e6; ///< ~50 Mb of M20K
    /** ALMs per soft FP adder / per soft FP multiplier support. */
    double almsPerFpAdd = 550;
    double almsPerFpMulSupport = 120;
};

struct FpgaEstimate
{
    double seconds = 0;
    double watts = 0;
    double logicUtil = 0; ///< fraction of ALMs
    double memUtil = 0;   ///< fraction of BRAM
    bool computeBound = false;
};

/** Estimate runtime/power of a benchmark on the baseline FPGA. */
FpgaEstimate estimateFpga(const apps::AppInstance &app,
                          const FpgaDevice &dev = FpgaDevice{});

} // namespace plast::fpga

#endif // PLAST_FPGA_FPGA_MODEL_HPP
