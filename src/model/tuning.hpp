/**
 * @file
 * Design-space tuning harness (§3.7, Figure 7): a model-driven brute
 * force over the PCU parameter grid. For every benchmark, every grid
 * point is scored by partitioning the benchmark's virtual units under
 * those parameters: AreaPCU = (#physical PCUs) x (per-PCU area).
 * Sweeping one axis reports AreaPCU / MinPCU - 1 with the minimum
 * taken over the rest of the space, and infeasible values (the x marks
 * in Figure 7) are grid points where no completion exists.
 */

#ifndef PLAST_MODEL_TUNING_HPP
#define PLAST_MODEL_TUNING_HPP

#include <string>
#include <vector>

#include "compiler/partition.hpp"
#include "model/area.hpp"

namespace plast::model
{

struct BenchLeaves
{
    std::string name;
    std::vector<compiler::VirtualLeaf> leaves;
};

/** Lower the Table 4 benchmarks to virtual units (Figure 7's twelve:
 *  every app except CNN, matching the paper's sweep set). */
std::vector<BenchLeaves> benchmarkLeaves();

class Tuner
{
  public:
    Tuner(std::vector<BenchLeaves> benches, AreaModel model,
          PcuParams base = PcuParams{});

    /** One feasible grid point's score for one benchmark. */
    struct Score
    {
        bool feasible = false;
        uint32_t pcus = 0;
        double area = 0;
    };

    /** Evaluate one parameter combination for one benchmark. */
    Score evaluate(size_t bench, const PcuParams &p) const;

    enum class Axis
    {
        kStages,
        kRegs,
        kScalarIns,
        kScalarOuts,
        kVectorIns,
        kVectorOuts
    };
    static std::string axisName(Axis axis);

    /**
     * Figure 7 series: for each value of `axis`, the normalized area
     * overhead (min over the rest of the coarse grid), or -1 when the
     * value is infeasible for the benchmark. `fixed` pins axes already
     * tuned (the paper sweeps in order, fixing earlier choices).
     */
    std::vector<double> sweep(size_t bench, Axis axis,
                              const std::vector<uint32_t> &values,
                              const PcuParams &fixedBase,
                              const std::vector<Axis> &fixedAxes) const;

    size_t numBenches() const { return benches_.size(); }
    const std::string &benchName(size_t i) const
    {
        return benches_[i].name;
    }

    /** Coarse grid used for the "rest of the space" minimization. */
    static const std::vector<uint32_t> &gridValues(Axis axis);

  private:
    std::vector<BenchLeaves> benches_;
    AreaModel model_;
    PcuParams base_;
};

} // namespace plast::model

#endif // PLAST_MODEL_TUNING_HPP
