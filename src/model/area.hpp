/**
 * @file
 * Analytical area model at 28 nm, calibrated to the paper's published
 * synthesis results (Table 5): component unit costs are derived from
 * the final architecture's breakdown (PCU 0.849 mm^2 with 73% FUs,
 * PMU 0.532 mm^2 with 90% scratchpad, interconnect 18.8 mm^2, memory
 * controllers 5.6 mm^2, chip 112.8 mm^2) and then applied
 * parametrically across the Table 3 design space for the Figure 7
 * sweeps and the Table 6 estimates.
 */

#ifndef PLAST_MODEL_AREA_HPP
#define PLAST_MODEL_AREA_HPP

#include <string>

#include "arch/params.hpp"

namespace plast::model
{

/** Calibrated 28 nm component costs (mm^2). */
struct AreaCosts
{
    // PCU: 0.622 mm^2 of FUs = 16 lanes x 6 stages.
    double fu = 0.622 / (16 * 6);
    // 0.144 mm^2 of pipeline registers = 96 FU sites x 6 regs.
    double reg = 0.144 / (16.0 * 6 * 6);
    // 0.082 mm^2 of input FIFOs = 3 vector + 6 scalar FIFOs.
    double vecFifo = 0.024;
    double scalFifo = (0.082 - 3 * 0.024) / 6;
    double control = 0.001;
    // PMU: 0.477 mm^2 of SRAM for 256 KB.
    double sramPerKb = 0.477 / 256.0;
    // PMU scalar datapath: 0.007 mm^2 of FUs over 4 stages.
    double scalarFu = 0.007 / 4;
    double pmuReg = 0.023 / (4.0 * 6);
    // Interconnect: 18.796 mm^2 over a 17 x 9 switch grid at the
    // default track counts; scales with link width.
    double switchBase = 18.796 / (17.0 * 9);
    // Memory controller: 4 coalescing units + 34 AGs = 5.616 mm^2.
    double coalescingUnit = 0.724;
    double ag = (5.616 - 4 * 0.724) / 34;
};

/** SECDED logic adders (mm^2): a (39,32) encode + correct stage per
 *  scratchpad bank, and a burst-wide codec per DRAM channel. The array
 *  overhead itself (7 check bits per 32-bit word = 39/32) is applied
 *  to the SRAM area directly. */
constexpr double kEccLogicPerBank = 0.0008;
constexpr double kEccLogicPerChannel = 0.020;

class AreaModel
{
  public:
    explicit AreaModel(AreaCosts costs = AreaCosts{}) : c_(costs) {}

    const AreaCosts &costs() const { return c_; }

    /** Area of one PCU under the given parameters. */
    double pcuArea(const PcuParams &p) const;

    /** Area of one PMU under the given parameters. */
    double pmuArea(const PmuParams &p) const;

    /** Area of one switch (three networks share the site). */
    double switchArea(const ArchParams &p) const;

    /** Component-wise chip area (Table 5). */
    struct Breakdown
    {
        double pcuEach = 0, pcuTotal = 0;
        double pcuFus = 0, pcuRegs = 0, pcuFifos = 0, pcuControl = 0;
        double pmuEach = 0, pmuTotal = 0;
        double pmuScratch = 0, pmuFifos = 0, pmuRegs = 0, pmuFus = 0,
               pmuControl = 0;
        double interconnect = 0;
        double memController = 0;
        double chip = 0;
        std::string table() const;
    };
    Breakdown chipBreakdown(const ArchParams &p) const;

    double chipArea(const ArchParams &p) const
    {
        return chipBreakdown(p).chip;
    }

  private:
    AreaCosts c_;
};

} // namespace plast::model

#endif // PLAST_MODEL_AREA_HPP
