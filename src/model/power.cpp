#include "model/power.hpp"

namespace plast::model
{

double
PowerModel::peak(const ArchParams &p) const
{
    double lane_ops = static_cast<double>(p.numPcus()) * p.pcu.lanes *
                      p.pcu.stages; // every FU busy every cycle
    // SECDED widens every scratchpad access to 39 bits and every DRAM
    // burst by its check bytes (x9/8, the standard 72/64 ratio).
    double sram_words = static_cast<double>(p.numPmus()) * p.pmu.banks *
                        (p.pmu.ecc ? 39.0 / 32.0 : 1.0);
    double dram_bytes =
        p.dram.peakBytesPerCycle() * (p.dram.ecc ? 9.0 / 8.0 : 1.0);
    double net_words =
        static_cast<double>(p.numPcus()) * p.pcu.lanes * 2.0;
    return c_.chipStatic + p.numPcus() * c_.pcuStatic +
           p.numPmus() * c_.pmuStatic + p.numAgs * c_.agStatic +
           lane_ops * c_.perLaneOp + sram_words * c_.perSramWord +
           dram_bytes * c_.perDramByte + net_words * c_.perNetHopWord;
}

double
PowerModel::estimate(const StatSet &stats,
                     const compiler::MappingReport &rep,
                     const ArchParams &params) const
{
    double cycles = static_cast<double>(stats.get("cycles"));
    if (cycles <= 0)
        cycles = 1;

    double lane_ops = 0, sram_words = 0, dram_bytes = 0;
    for (const auto &[name, value] : stats.all()) {
        if (name.size() > 8 &&
            name.compare(name.size() - 7, 7, "laneOps") == 0)
            lane_ops += static_cast<double>(value);
        if (name.find("wordsRead") != std::string::npos ||
            name.find("wordsWritten") != std::string::npos)
            sram_words += static_cast<double>(value);
    }
    dram_bytes = static_cast<double>(stats.get("mem.bytesRead") +
                                     stats.get("mem.bytesWritten"));
    // Routed traffic approximated by average hop length of the design.
    double avg_hops =
        rep.channels ? static_cast<double>(rep.routedHops) / rep.channels
                     : 2.0;
    double net_words = lane_ops / 4.0 * avg_hops / 4.0;

    // ECC widens the physical accesses behind the logical word/byte
    // counts the simulator reports (see PowerModel::peak).
    double sram_ecc = params.pmu.ecc ? 39.0 / 32.0 : 1.0;
    double dram_ecc = params.dram.ecc ? 9.0 / 8.0 : 1.0;

    return c_.chipStatic + rep.pcusUsed * c_.pcuStatic +
           rep.pmusUsed * c_.pmuStatic + rep.agsUsed * c_.agStatic +
           (lane_ops / cycles) * c_.perLaneOp +
           (sram_words * sram_ecc / cycles) * c_.perSramWord +
           (dram_bytes * dram_ecc / cycles) * c_.perDramByte +
           (net_words / cycles) * c_.perNetHopWord;
}

} // namespace plast::model
