#include "model/tuning.hpp"

#include <algorithm>
#include <functional>

#include "apps/apps.hpp"
#include "base/logging.hpp"
#include "compiler/vleaf.hpp"
#include "pir/ir.hpp"

namespace plast::model
{

using compiler::VirtualLeaf;

std::vector<BenchLeaves>
benchmarkLeaves()
{
    std::vector<BenchLeaves> out;
    for (const auto &spec : apps::allApps()) {
        if (spec.name == "CNN")
            continue; // Figure 7 sweeps the other twelve
        apps::AppInstance app = spec.make(apps::Scale::kTiny);
        BenchLeaves bl;
        bl.name = spec.name;
        for (size_t i = 0; i < app.prog.nodes.size(); ++i) {
            if (app.prog.nodes[i].kind == pir::NodeKind::kCompute)
                bl.leaves.push_back(compiler::lowerLeaf(
                    app.prog, static_cast<pir::NodeId>(i), 16));
        }
        out.push_back(std::move(bl));
    }
    return out;
}

Tuner::Tuner(std::vector<BenchLeaves> benches, AreaModel model,
             PcuParams base)
    : benches_(std::move(benches)), model_(model), base_(base)
{
}

Tuner::Score
Tuner::evaluate(size_t bench, const PcuParams &p) const
{
    Score s;
    uint32_t pcus = 0;
    for (const VirtualLeaf &leaf : benches_[bench].leaves) {
        compiler::PartitionResult pr = compiler::partitionLeaf(leaf, p);
        if (!pr.ok)
            return s; // infeasible
        pcus += pr.numChunks();
    }
    s.feasible = true;
    s.pcus = pcus;
    s.area = pcus * model_.pcuArea(p);
    return s;
}

std::string
Tuner::axisName(Axis axis)
{
    switch (axis) {
      case Axis::kStages: return "Stages";
      case Axis::kRegs: return "Registers";
      case Axis::kScalarIns: return "ScalarIns";
      case Axis::kScalarOuts: return "ScalarOuts";
      case Axis::kVectorIns: return "VectorIns";
      case Axis::kVectorOuts: return "VectorOuts";
    }
    return "?";
}

const std::vector<uint32_t> &
Tuner::gridValues(Axis axis)
{
    static const std::vector<uint32_t> stages = {4, 5, 6, 8, 10, 12, 16};
    static const std::vector<uint32_t> regs = {2, 4, 6, 8, 16};
    static const std::vector<uint32_t> sins = {1, 2, 4, 6, 8, 16};
    static const std::vector<uint32_t> souts = {1, 2, 3, 4, 5, 6};
    static const std::vector<uint32_t> vins = {1, 2, 3, 4, 6, 10};
    static const std::vector<uint32_t> vouts = {1, 2, 3, 4, 6};
    switch (axis) {
      case Axis::kStages: return stages;
      case Axis::kRegs: return regs;
      case Axis::kScalarIns: return sins;
      case Axis::kScalarOuts: return souts;
      case Axis::kVectorIns: return vins;
      case Axis::kVectorOuts: return vouts;
    }
    return stages;
}

namespace
{

void
setAxis(PcuParams &p, Tuner::Axis axis, uint32_t v)
{
    switch (axis) {
      case Tuner::Axis::kStages: p.stages = v; break;
      case Tuner::Axis::kRegs: p.regsPerStage = v; break;
      case Tuner::Axis::kScalarIns: p.scalarIns = v; break;
      case Tuner::Axis::kScalarOuts: p.scalarOuts = v; break;
      case Tuner::Axis::kVectorIns: p.vectorIns = v; break;
      case Tuner::Axis::kVectorOuts: p.vectorOuts = v; break;
    }
}

} // namespace

std::vector<double>
Tuner::sweep(size_t bench, Axis axis, const std::vector<uint32_t> &values,
             const PcuParams &fixedBase,
             const std::vector<Axis> &fixedAxes) const
{
    // Free axes: everything not fixed and not the swept one.
    std::vector<Axis> all = {Axis::kStages,     Axis::kRegs,
                             Axis::kScalarIns,  Axis::kScalarOuts,
                             Axis::kVectorIns,  Axis::kVectorOuts};
    std::vector<Axis> free_axes;
    for (Axis a : all) {
        bool fixed = a == axis ||
                     std::find(fixedAxes.begin(), fixedAxes.end(), a) !=
                         fixedAxes.end();
        if (!fixed)
            free_axes.push_back(a);
    }

    // Minimum area for a given swept value: enumerate the free grid.
    auto min_area = [&](uint32_t v) {
        double best = -1;
        PcuParams p = fixedBase;
        setAxis(p, axis, v);
        // Recursive enumeration over free axes.
        std::function<void(size_t)> rec = [&](size_t i) {
            if (i == free_axes.size()) {
                Score s = evaluate(bench, p);
                if (s.feasible && (best < 0 || s.area < best))
                    best = s.area;
                return;
            }
            for (uint32_t gv : gridValues(free_axes[i])) {
                setAxis(p, free_axes[i], gv);
                rec(i + 1);
            }
        };
        rec(0);
        return best;
    };

    std::vector<double> areas(values.size(), -1);
    double global_min = -1;
    for (size_t i = 0; i < values.size(); ++i) {
        areas[i] = min_area(values[i]);
        if (areas[i] > 0 && (global_min < 0 || areas[i] < global_min))
            global_min = areas[i];
    }
    std::vector<double> overhead(values.size(), -1);
    for (size_t i = 0; i < values.size(); ++i) {
        if (areas[i] > 0 && global_min > 0)
            overhead[i] = areas[i] / global_min - 1.0;
    }
    return overhead;
}

} // namespace plast::model
