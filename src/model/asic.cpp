#include "model/asic.hpp"

#include <algorithm>

#include "base/logging.hpp"
#include "compiler/mapper.hpp"
#include "compiler/partition.hpp"
#include "compiler/vleaf.hpp"

namespace plast::model
{

using namespace compiler;

GeneralityRow
estimateGenerality(const std::string &name, const pir::Program &prog,
                   const AreaModel &model, const ArchParams &finalParams)
{
    GeneralityRow row;
    row.name = name;
    const AreaCosts &c = model.costs();

    // Lower every compute leaf and partition it under generous caps to
    // recover the per-chunk requirements (the "heterogeneous" units).
    PcuParams wide;
    wide.stages = 16;
    wide.regsPerStage = 16;
    wide.scalarIns = 16;
    wide.scalarOuts = 6;
    wide.vectorIns = 10;
    wide.vectorOuts = 6;
    std::vector<ChunkMetrics> chunks;
    for (size_t i = 0; i < prog.nodes.size(); ++i) {
        if (prog.nodes[i].kind != pir::NodeKind::kCompute)
            continue;
        VirtualLeaf vl = lowerLeaf(prog, static_cast<pir::NodeId>(i), 16);
        PartitionResult pr = partitionLeaf(vl, wide);
        fatal_if(!pr.ok, "generality estimate: %s does not partition",
                 vl.name.c_str());
        for (const Chunk &ch : pr.chunks)
            chunks.push_back(ch.metrics);
    }

    // Memory requirements from the real mapper (PMU instances incl.
    // duplication and N-buffering).
    MapResult mapped = compileProgram(prog, finalParams);
    fatal_if(!mapped.report.ok, "generality estimate: mapping failed");
    uint32_t n_pmus = std::max(1u, mapped.report.pmusUsed);
    std::vector<double> mem_kb;
    for (const PmuCfg &p : mapped.fabric.pmus) {
        if (p.used)
            mem_kb.push_back(static_cast<double>(p.scratch.numBufs) *
                             p.scratch.sizeWords * 4.0 / 1024.0);
    }
    while (mem_kb.size() < n_pmus)
        mem_kb.push_back(1.0);
    uint32_t n_ags = std::max(1u, mapped.report.agsUsed);

    const uint32_t lanes = 16;

    // --- ASIC: fixed-function datapaths and exactly sized SRAMs ----
    // No configuration muxes/registers (~45% of FU area), fixed wiring
    // instead of FIFO-buffered buses, fixed banking (~15% SRAM saving),
    // fixed-function DMA engines.
    double asic_compute = 0;
    for (const auto &m : chunks) {
        asic_compute += m.stages * lanes * c.fu * 0.45;
        asic_compute += m.regs * lanes * c.reg * 0.6;
    }
    double asic_mem = 0;
    for (double kb : mem_kb)
        asic_mem += kb * c.sramPerKb * 0.85;
    double asic_mc = finalParams.dram.channels * c.coalescingUnit * 0.5 +
                     n_ags * c.ag * 0.5;
    row.asic = asic_compute + asic_mem + asic_mc;

    // --- a. heterogeneous reconfigurable units ----------------------
    double het_compute = 0;
    for (const auto &m : chunks) {
        PcuParams p;
        p.lanes = lanes;
        p.stages = std::max(1u, m.stages);
        p.regsPerStage = std::max(1u, m.regs);
        p.scalarIns = std::max(1u, m.scalarIns);
        p.scalarOuts = std::max(1u, m.scalarOuts);
        p.vectorIns = std::max(1u, m.vectorIns);
        p.vectorOuts = std::max(1u, m.vectorOuts);
        het_compute += model.pcuArea(p);
    }
    auto pmu_of_kb = [&](double kb) {
        PmuParams p = finalParams.pmu;
        p.bankKilobytes = std::max(
            1u, static_cast<uint32_t>((kb + p.banks - 1) / p.banks));
        return model.pmuArea(p);
    };
    double het_mem = 0;
    for (double kb : mem_kb)
        het_mem += pmu_of_kb(kb);
    double mc = finalParams.dram.channels * c.coalescingUnit +
                n_ags * c.ag;
    row.hetero = het_compute + het_mem + mc;

    // --- b. homogeneous PMUs (benchmark max size) ---------------------
    double max_kb = *std::max_element(mem_kb.begin(), mem_kb.end());
    double homo_mem = n_pmus * pmu_of_kb(max_kb);
    row.homoPmu = het_compute + homo_mem + mc;

    // --- c. homogeneous PCUs (benchmark max parameters) ----------------
    PcuParams homo;
    homo.lanes = lanes;
    homo.stages = homo.regsPerStage = homo.scalarIns = 1;
    homo.scalarOuts = homo.vectorIns = homo.vectorOuts = 1;
    for (const auto &m : chunks) {
        homo.stages = std::max(homo.stages, m.stages);
        homo.regsPerStage = std::max(homo.regsPerStage, m.regs);
        homo.scalarIns = std::max(homo.scalarIns, m.scalarIns);
        homo.scalarOuts = std::max(homo.scalarOuts, m.scalarOuts);
        homo.vectorIns = std::max(homo.vectorIns, m.vectorIns);
        homo.vectorOuts = std::max(homo.vectorOuts, m.vectorOuts);
    }
    double homo_compute = chunks.size() * model.pcuArea(homo);
    row.homoPcu = homo_compute + homo_mem + mc;

    // --- d. PMUs generalized across applications (256 KB) -------------
    double gen_mem = n_pmus * model.pmuArea(finalParams.pmu);
    row.genPmu = homo_compute + gen_mem + mc;

    // --- e. PCUs generalized across applications (Table 3) -----------
    double gen_compute =
        mapped.report.pcusUsed * model.pcuArea(finalParams.pcu);
    row.genPcu = gen_compute + gen_mem + mc;

    return row;
}

} // namespace plast::model
