#include "model/area.hpp"

#include "base/logging.hpp"

namespace plast::model
{

double
AreaModel::pcuArea(const PcuParams &p) const
{
    double fus = c_.fu * p.lanes * p.stages;
    double regs = c_.reg * p.lanes * p.stages * p.regsPerStage;
    double fifos = c_.vecFifo * p.vectorIns * (p.lanes / 16.0) +
                   c_.scalFifo * p.scalarIns;
    // Output crossbars scale with the output counts.
    double xbar = 0.002 * p.vectorOuts * (p.lanes / 16.0) +
                  0.0005 * p.scalarOuts;
    return fus + regs + fifos + xbar + c_.control;
}

double
AreaModel::pmuArea(const PmuParams &p) const
{
    // SECDED on 32-bit words stores 7 check bits alongside each word
    // (39/32 array overhead) plus an encode/correct stage per bank.
    double scratch = c_.sramPerKb * p.banks * p.bankKilobytes *
                     (p.ecc ? 39.0 / 32.0 : 1.0);
    double eccLogic = p.ecc ? kEccLogicPerBank * p.banks : 0.0;
    double fus = c_.scalarFu * p.stages;
    double regs = c_.pmuReg * p.stages * p.regsPerStage;
    double fifos = c_.vecFifo / 3.0 * p.vectorIns +
                   c_.scalFifo * p.scalarIns;
    return scratch + eccLogic + fus + regs + fifos + 0.001;
}

double
AreaModel::switchArea(const ArchParams &p) const
{
    // Link width relative to the calibration point (4 vector tracks of
    // 16 lanes dominate switch area).
    double rel = (p.vectorTracks * p.pcu.lanes) / (4.0 * 16.0) * 0.85 +
                 (p.scalarTracks / 4.0) * 0.10 +
                 (p.controlTracks / 32.0) * 0.05;
    return c_.switchBase * rel;
}

AreaModel::Breakdown
AreaModel::chipBreakdown(const ArchParams &p) const
{
    Breakdown b;
    b.pcuFus = c_.fu * p.pcu.lanes * p.pcu.stages;
    b.pcuRegs = c_.reg * p.pcu.lanes * p.pcu.stages * p.pcu.regsPerStage;
    b.pcuFifos = c_.vecFifo * p.pcu.vectorIns * (p.pcu.lanes / 16.0) +
                 c_.scalFifo * p.pcu.scalarIns;
    b.pcuControl = c_.control;
    b.pcuEach = pcuArea(p.pcu);
    b.pcuTotal = b.pcuEach * p.numPcus();

    b.pmuScratch = c_.sramPerKb * p.pmu.banks * p.pmu.bankKilobytes *
                       (p.pmu.ecc ? 39.0 / 32.0 : 1.0) +
                   (p.pmu.ecc ? kEccLogicPerBank * p.pmu.banks : 0.0);
    b.pmuFus = c_.scalarFu * p.pmu.stages;
    b.pmuRegs = c_.pmuReg * p.pmu.stages * p.pmu.regsPerStage;
    b.pmuFifos = c_.vecFifo / 3.0 * p.pmu.vectorIns +
                 c_.scalFifo * p.pmu.scalarIns;
    b.pmuControl = 0.001;
    b.pmuEach = pmuArea(p.pmu);
    b.pmuTotal = b.pmuEach * p.numPmus();

    b.interconnect = switchArea(p) * p.switchCols() * p.switchRows();
    // DRAM-side SECDED: one burst-wide encoder/decoder per channel.
    b.memController = c_.coalescingUnit * p.dram.channels +
                      c_.ag * p.numAgs +
                      (p.dram.ecc ? kEccLogicPerChannel * p.dram.channels
                                  : 0.0);
    b.chip = b.pcuTotal + b.pmuTotal + b.interconnect + b.memController;
    return b;
}

std::string
AreaModel::Breakdown::table() const
{
    std::string out;
    auto row = [&](const char *name, double mm2, double pct) {
        out += strfmt("  %-28s %8.3f mm2  %6.2f%%\n", name, mm2, pct);
    };
    out += "PCU (single unit)\n";
    row("FUs", pcuFus, 100.0 * pcuFus / pcuEach);
    row("Registers", pcuRegs, 100.0 * pcuRegs / pcuEach);
    row("FIFOs", pcuFifos, 100.0 * pcuFifos / pcuEach);
    row("Control", pcuControl, 100.0 * pcuControl / pcuEach);
    row("Total (single PCU)", pcuEach, 100.0);
    out += "PMU (single unit)\n";
    row("Scratchpad", pmuScratch, 100.0 * pmuScratch / pmuEach);
    row("FIFOs", pmuFifos, 100.0 * pmuFifos / pmuEach);
    row("Registers", pmuRegs, 100.0 * pmuRegs / pmuEach);
    row("FUs", pmuFus, 100.0 * pmuFus / pmuEach);
    row("Control", pmuControl, 100.0 * pmuControl / pmuEach);
    row("Total (single PMU)", pmuEach, 100.0);
    out += "Chip\n";
    row("PCUs", pcuTotal, 100.0 * pcuTotal / chip);
    row("PMUs", pmuTotal, 100.0 * pmuTotal / chip);
    row("Interconnect", interconnect, 100.0 * interconnect / chip);
    row("Memory controller", memController,
        100.0 * memController / chip);
    row("Plasticine total", chip, 100.0);
    return out;
}

} // namespace plast::model
