/**
 * @file
 * Activity-based power model, calibrated so the final architecture
 * peaks at the paper's 49 W @ 1 GHz (Table 7 per-benchmark powers run
 * 10-43 W): a chip-static floor, per-configured-unit clocking power
 * (unused units are clock/power gated, §4.5), and dynamic energy
 * proportional to FU lane-operations, scratchpad word accesses, routed
 * vector traffic, and DRAM bytes — all taken from simulator statistics.
 */

#ifndef PLAST_MODEL_POWER_HPP
#define PLAST_MODEL_POWER_HPP

#include "arch/params.hpp"
#include "base/stats.hpp"
#include "compiler/mapper.hpp"

namespace plast::model
{

struct PowerCosts
{
    double chipStatic = 3.5;       ///< W, whole chip
    double pcuStatic = 0.055;      ///< W per configured PCU
    double pmuStatic = 0.075;      ///< W per configured PMU (SRAM leakage)
    double agStatic = 0.03;        ///< W per configured AG + CU share
    double perLaneOp = 4.0e-3;     ///< W per (lane-op / cycle)
    double perSramWord = 6.0e-3;   ///< W per (scratch word / cycle)
    double perDramByte = 0.11;     ///< W per (DRAM byte / cycle)
    double perNetHopWord = 0.9e-3; ///< W per (routed word-hop / cycle)
};

class PowerModel
{
  public:
    explicit PowerModel(PowerCosts costs = PowerCosts{}) : c_(costs) {}

    /** Peak chip power with every unit at full activity (~49 W). */
    double peak(const ArchParams &p) const;

    /** Average power of a finished run from simulator statistics. */
    double estimate(const StatSet &stats,
                    const compiler::MappingReport &rep,
                    const ArchParams &params) const;

  private:
    PowerCosts c_;
};

} // namespace plast::model

#endif // PLAST_MODEL_POWER_HPP
