/**
 * @file
 * Table 6: the cost of generality, estimated as a chain of successively
 * more general designs with identical performance:
 *
 *   ASIC -> (a) reconfigurable heterogeneous PCUs/PMUs
 *        -> (b) homogeneous PMUs (benchmark-specific size)
 *        -> (c) homogeneous PCUs (benchmark-specific parameters)
 *        -> (d) PMUs generalized across applications (256 KB)
 *        -> (e) PCUs generalized across applications (Table 3)
 *
 * Compute resources are sized from the benchmarks' virtual units and
 * the partitioner; memory resources from the mapper's PMU allocation.
 */

#ifndef PLAST_MODEL_ASIC_HPP
#define PLAST_MODEL_ASIC_HPP

#include <string>
#include <vector>

#include "arch/params.hpp"
#include "model/area.hpp"
#include "pir/ir.hpp"

namespace plast::model
{

struct GeneralityRow
{
    std::string name;
    double asic = 0;     ///< fixed-function estimate (mm^2)
    double hetero = 0;   ///< a. reconfigurable heterogeneous units
    double homoPmu = 0;  ///< b. one PMU design per benchmark
    double homoPcu = 0;  ///< c. one PCU design per benchmark
    double genPmu = 0;   ///< d. PMUs generalized across benchmarks
    double genPcu = 0;   ///< e. PCUs generalized across benchmarks

    // Successive and cumulative overheads, as in Table 6.
    double aRatio() const { return hetero / asic; }
    double bRatio() const { return homoPmu / hetero; }
    double cRatio() const { return homoPcu / homoPmu; }
    double dRatio() const { return genPmu / homoPcu; }
    double eRatio() const { return genPcu / genPmu; }
    double cumulative() const { return genPcu / asic; }
};

/** Estimate the generality chain for one benchmark program. */
GeneralityRow estimateGenerality(const std::string &name,
                                 const pir::Program &prog,
                                 const AreaModel &model,
                                 const ArchParams &finalParams);

} // namespace plast::model

#endif // PLAST_MODEL_ASIC_HPP
