/**
 * @file
 * Domain example: European option pricing. The Black-Scholes kernel is
 * one of the paper's motivating workloads — a deep floating-point
 * pipeline that the compiler automatically partitions across a chain
 * of PCUs (the paper's version runs ~80 FU stages).
 *
 * Prices a batch of options and prints a few, plus how the pipeline
 * was mapped.
 */

#include <cstdio>

#include "apps/apps.hpp"

using namespace plast;

int
main()
{
    setVerbose(false);
    apps::AppInstance app =
        apps::makeBlackScholes(apps::Scale::kTiny, /*par=*/2);

    Runner runner(app.prog);
    app.load(runner);

    // Override a few options with recognizable market data:
    // spot 100, strike 95, 1 year to expiry.
    auto &spot = runner.dram(0);
    auto &strike = runner.dram(1);
    auto &expiry = runner.dram(2);
    for (int k = 0; k < 4; ++k) {
        spot[k] = floatToWord(100.0f);
        strike[k] = floatToWord(95.0f + 5.0f * k);
        expiry[k] = floatToWord(1.0f);
    }

    Runner::Result res = runner.runValidated();

    std::vector<Word> call = runner.readDram(3);
    std::vector<Word> put = runner.readDram(4);
    std::printf("spot=100, r=2%%, vol=30%%, T=1y\n");
    std::printf("%8s %10s %10s\n", "strike", "call", "put");
    for (int k = 0; k < 4; ++k) {
        std::printf("%8.1f %10.4f %10.4f\n", 95.0f + 5.0f * k,
                    wordToFloat(call[k]), wordToFloat(put[k]));
    }

    std::printf("\npipeline mapping: %u PCUs chained (deep FP pipeline "
                "split across units), %llu cycles for %zu options\n",
                runner.report().pcusUsed,
                static_cast<unsigned long long>(res.cycles),
                spot.size());
    return 0;
}
