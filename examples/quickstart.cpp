/**
 * @file
 * Quickstart: build a parallel-pattern program with the PIR Builder,
 * compile it onto the Plasticine fabric, run the cycle simulator, and
 * read back results.
 *
 * The program computes a fused map+fold over a streamed array:
 *
 *     out  = sum_i (a[i] * a[i])        (Fold)
 *     sq[] = a[i] * a[i]                (Map, streamed back to DRAM)
 *
 * Run:  ./quickstart
 */

#include <cstdio>

#include "pir/builder.hpp"
#include "runtime/runner.hpp"

using namespace plast;
using namespace plast::pir;

int
main()
{
    const int64_t n = 4096;

    // ---- 1. Describe the program as parallel patterns ----------------
    Builder b("quickstart");
    MemId a = b.dram("a", n);       // input vector in accelerator DRAM
    MemId sq = b.dram("sq", n);     // squared outputs
    int32_t sum = b.argOut();       // scalar result register

    // Controller tree: one sequential root with a single inner pattern.
    NodeId root = b.outer("root", CtrlScheme::kSequential, {}, kNone);

    // The pattern index: i in [0, n), vectorized across 16 SIMD lanes.
    CtrId i = b.ctr("i", 0, n, 1, /*vectorized=*/true);

    // Dataflow: one streamed input element per index, squared.
    ExprId ai = b.streamRef(0); // element of the first stream below
    ExprId squared = b.fmul(ai, ai);

    b.compute("square-and-sum", root, {i},
              /*streams:*/ {StreamIn{a, b.ctrE(i)}},
              /*scalars:*/ {},
              /*sinks:  */
              {
                  Builder::streamOut(sq, b.ctrE(i), squared),
                  Builder::fold(FuOp::kFAdd, squared, i, sum),
              });

    // ---- 2. Compile and load -----------------------------------------
    Runner runner(b.finish(root)); // compiles on first run()
    auto &input = runner.dram(a);
    for (int64_t k = 0; k < n; ++k)
        input[k] = floatToWord(0.001f * static_cast<float>(k));

    // ---- 3. Run the cycle simulator (validated against the golden
    //         reference model: results must match bit for bit) ---------
    Runner::Result res = runner.runValidated();

    // ---- 4. Read results ----------------------------------------------
    std::printf("sum of squares = %f\n",
                wordToFloat(res.argOuts[sum].back()));
    std::vector<Word> out = runner.readDram(sq);
    std::printf("sq[10] = %f (expect %f)\n", wordToFloat(out[10]),
                0.01f * 0.01f);

    std::printf("\n--- performance ---\n");
    std::printf("cycles @ 1 GHz      : %llu\n",
                static_cast<unsigned long long>(res.cycles));
    std::printf("DRAM traffic        : %llu bytes\n",
                static_cast<unsigned long long>(
                    res.stats.get("mem.bytesRead") +
                    res.stats.get("mem.bytesWritten")));
    std::printf("mapped resources    : %s\n",
                runner.report().summary(ArchParams{}).c_str());
    return 0;
}
