/**
 * @file
 * Run one of the 13 benchmarks with cycle-level tracing enabled and
 * export the observability artifacts:
 *
 *   trace_app GEMM --trace=gemm.json --report
 *
 * writes a Chrome trace-event JSON (load it at ui.perfetto.dev or
 * chrome://tracing) and prints the post-run bottleneck report. The
 * trace carries two processes on one timeline: the fabric's simulated
 * cycles (pid 1) and the host's wall-clock compile/build/run phases
 * (pid 2) — so "why is the sim slow" and "why is the program slow" are
 * answered by the same file. Also supports epoch-sampled utilization
 * CSV, a flat stats JSON dump, a Prometheus-style metric exposition
 * and the per-run manifest.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "apps/apps.hpp"
#include "base/logging.hpp"
#include "base/metrics.hpp"
#include "base/profile.hpp"
#include "runtime/bottleneck.hpp"
#include "runtime/runner.hpp"

using namespace plast;

namespace
{

void
usage()
{
    std::printf(
        "usage: trace_app <app> [options]\n"
        "  --mode=activity|dense   simulation mode (default activity)\n"
        "  --sim-mode=interp|specialized\n"
        "                          datapath engine (default interp)\n"
        "  --scale=tiny|default    workload size (default tiny)\n"
        "  --trace=<path>          write Chrome trace-event JSON\n"
        "  --util-csv=<path>       write epoch utilization CSV\n"
        "  --stats-json=<path>     write flat stats JSON\n"
        "  --metrics=<path>        write Prometheus-style text exposition\n"
        "  --manifest=<path>       write the per-run manifest JSON\n"
        "  --epoch=<cycles>        utilization epoch length (default 1024)\n"
        "  --report                print the bottleneck report\n"
        "apps:");
    for (const auto &spec : apps::allApps())
        std::printf(" %s", spec.name.c_str());
    std::printf("\n");
}

std::string
flagValue(const char *arg, const char *name)
{
    size_t n = std::strlen(name);
    if (std::strncmp(arg, name, n) == 0 && arg[n] == '=')
        return arg + n + 1;
    return "";
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    if (argc < 2) {
        usage();
        return 1;
    }

    std::string app_name = argv[1];
    std::string trace_path, csv_path, json_path, metrics_path,
        manifest_path;
    apps::Scale scale = apps::Scale::kTiny;
    SimOptions opts;
    bool report = false;

    for (int i = 2; i < argc; ++i) {
        const char *arg = argv[i];
        std::string v;
        if (!(v = flagValue(arg, "--mode")).empty()) {
            opts.mode = v == "dense" ? SimOptions::Mode::kDense
                                     : SimOptions::Mode::kActivity;
        } else if (!(v = flagValue(arg, "--sim-mode")).empty()) {
            opts.simMode = v == "specialized" ? SimMode::kSpecialized
                                              : SimMode::kInterp;
        } else if (!(v = flagValue(arg, "--scale")).empty()) {
            scale = v == "default" ? apps::Scale::kDefault
                                   : apps::Scale::kTiny;
        } else if (!(v = flagValue(arg, "--trace")).empty()) {
            trace_path = v;
        } else if (!(v = flagValue(arg, "--util-csv")).empty()) {
            csv_path = v;
        } else if (!(v = flagValue(arg, "--stats-json")).empty()) {
            json_path = v;
        } else if (!(v = flagValue(arg, "--metrics")).empty()) {
            metrics_path = v;
        } else if (!(v = flagValue(arg, "--manifest")).empty()) {
            manifest_path = v;
        } else if (!(v = flagValue(arg, "--epoch")).empty()) {
            opts.trace.epochCycles = std::stoul(v);
        } else if (std::strcmp(arg, "--report") == 0) {
            report = true;
        } else {
            usage();
            return 1;
        }
    }

    const apps::AppSpec *spec = nullptr;
    for (const auto &s : apps::allApps()) {
        if (s.name == app_name)
            spec = &s;
    }
    if (!spec) {
        std::printf("unknown app '%s'\n", app_name.c_str());
        usage();
        return 1;
    }

    // Tracing is needed for the trace file, the utilization CSV and the
    // per-unit ledgers feeding the bottleneck report.
    opts.trace.enabled =
        !trace_path.empty() || !csv_path.empty() || report;
    if (!kTracingCompiled && opts.trace.enabled) {
        std::printf("built with PLAST_TRACING=0; tracing unavailable\n");
        return 1;
    }

    apps::AppInstance app = spec->make(scale);
    Runner runner(app.prog, ArchParams::plasticineFinal(), opts);
    app.load(runner);
    Runner::Result res = runner.run();
    std::printf("%s: %llu cycles (%s mode, %s datapath)\n",
                app.name.c_str(),
                static_cast<unsigned long long>(res.cycles),
                opts.mode == SimOptions::Mode::kDense ? "dense"
                                                      : "activity",
                simModeName(opts.simMode));

    const Fabric *fab = runner.fabric();
    if (!trace_path.empty()) {
        std::ofstream os(trace_path);
        fatal_if(!os, "cannot open %s", trace_path.c_str());
        fab->writeTrace(os);
        std::printf("trace: %s (%zu events, %llu dropped)\n",
                    trace_path.c_str(), fab->trace()->size(),
                    static_cast<unsigned long long>(
                        fab->trace()->dropped()));
    }
    if (!csv_path.empty()) {
        std::ofstream os(csv_path);
        fatal_if(!os, "cannot open %s", csv_path.c_str());
        fab->writeUtilizationCsv(os);
        std::printf("utilization: %s\n", csv_path.c_str());
    }
    if (!json_path.empty()) {
        std::ofstream os(json_path);
        fatal_if(!os, "cannot open %s", json_path.c_str());
        res.stats.dumpJson(os);
        std::printf("stats: %s\n", json_path.c_str());
    }
    if (!metrics_path.empty()) {
        // The unified exposition: simulator counters plus host phase
        // timings through one MetricRegistry, scrape-ready.
        MetricRegistry reg;
        reg.importStats(res.stats, "sim.");
        for (const auto &[phase, us] :
             HostProfiler::instance().totalsUs())
            reg.setCounter("host.phase_us." + phase, us);
        std::ofstream os(metrics_path);
        fatal_if(!os, "cannot open %s", metrics_path.c_str());
        reg.writePrometheus(os);
        std::printf("metrics: %s\n", metrics_path.c_str());
    }
    if (!manifest_path.empty()) {
        std::ofstream os(manifest_path);
        fatal_if(!os, "cannot open %s", manifest_path.c_str());
        runner.writeManifest(os, res);
        std::printf("manifest: %s\n", manifest_path.c_str());
    }
    if (report) {
        BottleneckReport rep = analyzeBottlenecks(*fab);
        std::printf("\n%s", rep.render().c_str());
    }
    return 0;
}
