/**
 * @file
 * Tooling example: compile a benchmark and print the configuration
 * "assembly" the compiler produced — every configured PCU stage, PMU
 * port program, AG command generator, control box, and routed channel
 * (the paper's §3.6 configuration description).
 *
 * Usage: ./inspect_mapping [benchmark-name]   (default: GEMM)
 */

#include <cstdio>
#include <cstring>

#include "apps/apps.hpp"
#include "arch/disasm.hpp"
#include "compiler/mapper.hpp"

using namespace plast;

int
main(int argc, char **argv)
{
    setVerbose(false);
    std::string name = argc > 1 ? argv[1] : "GEMM";
    for (const auto &spec : apps::allApps()) {
        if (spec.name != name)
            continue;
        apps::AppInstance app = spec.make(apps::Scale::kTiny);
        std::printf("--- controller tree ---\n%s\n",
                    app.prog.dump().c_str());
        compiler::MapResult res = compiler::compileProgram(
            app.prog, ArchParams::plasticineFinal());
        if (!res.report.ok) {
            std::fprintf(stderr, "mapping failed: %s\n",
                         res.report.error.c_str());
            return 1;
        }
        std::printf("--- configuration assembly ---\n%s",
                    disasmFabric(res.fabric).c_str());
        std::printf("\n%s\n",
                    res.report.summary(ArchParams{}).c_str());
        return 0;
    }
    std::fprintf(stderr, "unknown benchmark '%s'\n", name.c_str());
    return 1;
}
