/**
 * @file
 * Architecture-exploration example: the §3.7 methodology as a library.
 * Evaluates candidate PCU configurations for a benchmark suite with
 * the same partition-then-price loop the paper used, prints the
 * per-candidate cost table, and cross-checks one point on the cycle
 * simulator.
 */

#include <cstdio>

#include "apps/apps.hpp"
#include "base/logging.hpp"
#include "model/tuning.hpp"

using namespace plast;
using model::Tuner;

int
main()
{
    setVerbose(false);
    Tuner tuner(model::benchmarkLeaves(), model::AreaModel{});

    struct Candidate
    {
        const char *name;
        PcuParams p;
    };
    std::vector<Candidate> candidates;
    {
        PcuParams shallow;
        shallow.stages = 4;
        candidates.push_back({"4-stage", shallow});
        PcuParams paper; // Table 3 final
        candidates.push_back({"paper (6-stage)", paper});
        PcuParams deep;
        deep.stages = 12;
        deep.regsPerStage = 8;
        candidates.push_back({"12-stage", deep});
        PcuParams lean;
        lean.stages = 6;
        lean.vectorIns = 2;
        lean.scalarIns = 2;
        candidates.push_back({"io-starved", lean});
    }

    std::printf("%-16s %10s %12s %10s\n", "candidate", "sum PCUs",
                "PCU mm^2", "suite mm^2");
    for (const Candidate &c : candidates) {
        uint32_t pcus = 0;
        bool feasible = true;
        double area = 0;
        for (size_t bi = 0; bi < tuner.numBenches(); ++bi) {
            Tuner::Score s = tuner.evaluate(bi, c.p);
            if (!s.feasible) {
                feasible = false;
                break;
            }
            pcus += s.pcus;
            area += s.area;
        }
        if (!feasible)
            std::printf("%-16s %10s\n", c.name, "infeasible");
        else
            std::printf("%-16s %10u %12.3f %10.2f\n", c.name, pcus,
                        model::AreaModel{}.pcuArea(c.p), area);
    }

    // Cross-check: the paper configuration actually runs a benchmark.
    apps::AppInstance app = apps::makeGda(apps::Scale::kTiny);
    Runner r(app.prog);
    app.load(r);
    Runner::Result res = r.runValidated();
    std::printf("\ncross-check: GDA on the selected configuration -> "
                "%llu cycles, results bit-exact.\n",
                static_cast<unsigned long long>(res.cycles));
    return 0;
}
