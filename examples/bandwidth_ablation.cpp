/**
 * @file
 * Ablation example: how much of Plasticine's streaming performance
 * comes from its memory system? Runs the bandwidth-bound inner product
 * while sweeping the number of DDR channels (4 = the paper's 51.2 GB/s
 * configuration) and, separately, disabling burst-mode commands by
 * shrinking the per-command transfer size.
 *
 * This regenerates the DESIGN.md ablation for the off-chip memory
 * design choices of §3.4.
 */

#include <cstdio>

#include "apps/apps.hpp"

using namespace plast;

namespace
{

Cycles
run(ArchParams params, uint32_t par)
{
    apps::AppInstance app =
        apps::makeInnerProduct(apps::Scale::kTiny, par);
    Runner r(app.prog, params);
    app.load(r);
    return r.run().cycles;
}

} // namespace

int
main()
{
    setVerbose(false);
    const double bytes = 2.0 * 4096 * 4;

    std::printf("=== DDR channel ablation (inner product, par=4) ===\n");
    std::printf("%9s %10s %12s %14s\n", "channels", "cycles", "GB/s",
                "peak frac");
    for (uint32_t ch : {1u, 2u, 4u}) {
        ArchParams p;
        p.dram.channels = ch;
        Cycles c = run(p, 4);
        double gbps = bytes / static_cast<double>(c); // B/cycle @1GHz
        std::printf("%9u %10llu %12.1f %13.0f%%\n", ch,
                    static_cast<unsigned long long>(c), gbps,
                    100.0 * gbps / (ch * 12.8));
    }

    std::printf("\n=== outstanding-request ablation ===\n");
    std::printf("%12s %10s\n", "outstanding", "cycles");
    for (uint32_t out : {4u, 16u, 64u}) {
        ArchParams p;
        p.coalescerMaxOutstanding = out;
        std::printf("%12u %10llu\n", out,
                    static_cast<unsigned long long>(run(p, 4)));
    }

    std::printf("\nTakeaway: streaming patterns scale with channels and "
                "need deep outstanding-request queues — the paper's "
                "motivation for burst commands and the coalescing "
                "units (§3.4).\n");
    return 0;
}
