/**
 * @file
 * Domain example: ranking pages of a small link graph with PageRank.
 * Exercises the sparse path — per-iteration gathers of predecessor
 * contributions through the address coalescing units — and prints the
 * top-ranked pages plus DRAM random-access statistics.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "apps/apps.hpp"

using namespace plast;

int
main()
{
    setVerbose(false);
    apps::AppInstance app = apps::makePageRank(apps::Scale::kTiny);

    Runner runner(app.prog);
    app.load(runner);

    // Make page 7 a hub: many pages link to it.
    auto &links = runner.dram(0); // links[p][l]: predecessors of p
    const int n = 128, l = 8;
    for (int p = 0; p < n; p += 3)
        links[static_cast<size_t>(p) * l] = intToWord(7);
    for (int e = 0; e < l; ++e)
        links[7 * l + e] = intToWord((e * 31) % n);

    Runner::Result res = runner.runValidated();

    std::vector<Word> rank = runner.readDram(1);
    std::vector<std::pair<float, int>> order;
    for (int p = 0; p < n; ++p)
        order.push_back({wordToFloat(rank[p]), p});
    std::sort(order.rbegin(), order.rend());

    std::printf("top pages after 2 damped iterations:\n");
    for (int k = 0; k < 5; ++k)
        std::printf("  page %3d  rank %.5f\n", order[k].second,
                    order[k].first);

    std::printf("\nsparse memory behaviour:\n");
    std::printf("  gather lanes coalesced : %llu\n",
                static_cast<unsigned long long>(
                    res.stats.get("mem.coalescedLanes")));
    std::printf("  DRAM bursts            : %llu\n",
                static_cast<unsigned long long>(
                    res.stats.get("mem.bursts")));
    std::printf("  cycles                 : %llu\n",
                static_cast<unsigned long long>(res.cycles));
    return 0;
}
